package runner

import (
	"context"
	"fmt"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// SimParams configures the flit-level verification stage of a sweep.
// Zero-valued fields pick defaults chosen to provoke deadlocks: saturation
// load and shallow buffers over a 20k-cycle horizon.
type SimParams struct {
	// Cycles is the simulation horizon per run. Default 20000.
	Cycles int64
	// Load is the injection load factor in (0, 1]. Default 1.0
	// (saturation — the regime where cyclic designs actually deadlock).
	Load float64
	// BufferDepth is the per-VC buffer depth in flits. Default 2.
	BufferDepth int
	// Seed drives the injection process.
	Seed int64
}

func (p SimParams) withDefaults() SimParams {
	if p.Cycles == 0 {
		p.Cycles = 20000
	}
	if p.Load == 0 {
		p.Load = 1.0
	}
	if p.BufferDepth == 0 {
		p.BufferDepth = 2
	}
	return p
}

// SimResult is the flit-level verification outcome of one grid cell: the
// negative control (the pre-removal design must deadlock under the
// constructed witness workload if its CDG was cyclic), the post-removal
// verdict (must never deadlock, neither under the witness nor under plain
// load), and the post-removal service metrics. All fields are pure
// functions of the cell spec and seed, so they serialize
// deterministically.
type SimResult struct {
	// PreRan reports whether the negative control ran; it is skipped when
	// the initial CDG is already acyclic (no deadlock to provoke).
	PreRan bool `json:"pre_ran"`
	// WitnessFlows is how many flows the constructed witness workload
	// saturates (the flows inducing the CDG's smallest cycle).
	WitnessFlows int `json:"witness_flows,omitempty"`
	// PreDeadlock is the negative control: true means the unmodified
	// design deadlocked under the witness workload, demonstrating the
	// hazard the removal algorithm exists to eliminate.
	PreDeadlock      bool  `json:"pre_deadlock"`
	PreDeadlockCycle int64 `json:"pre_deadlock_cycle,omitempty"`

	// PostDeadlock must be false: the post-removal design simulated under
	// the identical witness workload and under the plain measurement
	// load.
	PostDeadlock bool `json:"post_deadlock"`

	// Post-removal service metrics at the configured load.
	PostDelivered  int64   `json:"post_delivered"`
	PostAvgLatency float64 `json:"post_avg_latency"`
	PostP50        int64   `json:"post_p50_latency"`
	PostP95        int64   `json:"post_p95_latency"`
	PostP99        int64   `json:"post_p99_latency"`
	// PostThroughput is delivered flits per cycle — the saturation
	// throughput when Load is 1.
	PostThroughput float64 `json:"post_throughput_flits_per_cycle"`
}

// witnessFlits is the packet length of the witness workload's saturated
// flows: long worms span several channels, so the constructed cycle's
// holdings actually interlock.
const witnessFlits = 16

// witnessWorkload constructs the adversarial counterexample for a cyclic
// design: it finds the CDG's smallest cycle, identifies the flows whose
// routes induce its dependency edges, and returns a copy of the traffic
// graph in which exactly those flows inject saturated long-packet traffic
// while every other flow is throttled to near silence. A blind saturation
// run almost never trips an application-specific design's cycle (the
// involved flows are usually low-bandwidth); driving the inducing flows
// directly makes the latent hazard manifest within a short horizon. The
// second return value is the number of saturated flows; a nil graph means
// the CDG is acyclic.
func witnessWorkload(g *traffic.Graph, top *topology.Topology, tab *route.Table) (*traffic.Graph, int, error) {
	c, err := cdg.Build(top, tab)
	if err != nil {
		return nil, 0, err
	}
	cyc := c.SmallestCycle()
	if len(cyc) == 0 {
		return nil, 0, nil
	}
	hot := map[int]bool{}
	for i := range cyc {
		for _, f := range c.FlowsOn(cyc[i], cyc[(i+1)%len(cyc)]) {
			hot[f] = true
		}
	}
	// Rebuild the graph flow by flow in ID order so flow IDs (and with
	// them the route table mapping) are preserved.
	w := traffic.NewGraph(g.Name + "_witness")
	for range g.Cores() {
		w.AddCore("")
	}
	for _, f := range g.Flows() {
		bw, flits := 0.001, f.PacketFlits
		if hot[f.ID] {
			bw, flits = 100, witnessFlits
		}
		id, err := w.AddFlow(f.Src, f.Dst, bw)
		if err != nil {
			return nil, 0, err
		}
		if err := w.SetPacketFlits(id, flits); err != nil {
			return nil, 0, err
		}
	}
	return w, len(hot), nil
}

// SimEval runs the flit-level verification stage for one evaluated cell.
// For a cyclic design it constructs the witness workload and simulates it
// on both the pre-removal design (negative control: must deadlock to
// demonstrate the hazard) and the post-removal design (must survive the
// identical adversarial workload). The post-removal design additionally
// runs the plain workload at the configured load for latency percentiles
// and throughput.
func SimEval(g *traffic.Graph,
	preTop *topology.Topology, preTab *route.Table, initialAcyclic bool,
	postTop *topology.Topology, postTab *route.Table,
	params SimParams) (*SimResult, error) {
	return SimEvalContext(context.Background(), g, preTop, preTab, initialAcyclic, postTop, postTab, params)
}

// SimEvalContext is SimEval with cooperative cancellation threaded into
// every simulation run's flit-stepping loop.
func SimEvalContext(ctx context.Context, g *traffic.Graph,
	preTop *topology.Topology, preTab *route.Table, initialAcyclic bool,
	postTop *topology.Topology, postTab *route.Table,
	params SimParams) (*SimResult, error) {

	params = params.withDefaults()
	res := &SimResult{}
	cfg := wormhole.Config{
		MaxCycles:   params.Cycles,
		LoadFactor:  params.Load,
		BufferDepth: params.BufferDepth,
		Seed:        params.Seed,
	}

	if !initialAcyclic {
		witness, nflows, err := witnessWorkload(g, preTop, preTab)
		if err != nil {
			return nil, fmt.Errorf("runner: witness workload: %w", err)
		}
		if witness != nil {
			res.PreRan = true
			res.WitnessFlows = nflows
			// The witness's point is to saturate the cycle-inducing
			// flows; a sub-saturation -sim-load must not de-fang the
			// negative control, so the witness runs always pin load 1.
			witnessCfg := cfg
			witnessCfg.LoadFactor = 1.0
			pre, err := wormhole.New(preTop, witness, preTab, witnessCfg)
			if err != nil {
				return nil, fmt.Errorf("runner: pre-removal sim: %w", err)
			}
			st, err := pre.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("runner: pre-removal sim: %w", err)
			}
			res.PreDeadlock = st.Deadlocked
			res.PreDeadlockCycle = st.DeadlockCycle

			// The removed design must survive the same adversarial
			// workload that just deadlocked (or at least stressed) the
			// original.
			postW, err := wormhole.New(postTop, witness, postTab, witnessCfg)
			if err != nil {
				return nil, fmt.Errorf("runner: post-removal witness sim: %w", err)
			}
			wst, err := postW.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("runner: post-removal witness sim: %w", err)
			}
			if wst.Deadlocked {
				res.PostDeadlock = true
			}
		}
	}

	postCfg := cfg
	postCfg.CollectLatencies = true
	post, err := wormhole.New(postTop, g, postTab, postCfg)
	if err != nil {
		return nil, fmt.Errorf("runner: post-removal sim: %w", err)
	}
	st, err := post.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("runner: post-removal sim: %w", err)
	}
	res.PostDeadlock = res.PostDeadlock || st.Deadlocked
	res.PostDelivered = st.DeliveredPackets
	res.PostAvgLatency = st.AvgLatency()
	res.PostP50 = st.LatencyPercentile(50)
	res.PostP95 = st.LatencyPercentile(95)
	res.PostP99 = st.LatencyPercentile(99)
	res.PostThroughput = st.ThroughputFlitsPerCycle()
	return res, nil
}
