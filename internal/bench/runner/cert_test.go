package runner_test

// The certified-checker verification stage: three-leg agreement on real
// sweeps, byte-identity across scheduling modes, cache-key
// discrimination, and the poisoned-salt regression (a cached cell
// carrying a certificate from a different checker build must re-certify,
// never reuse it).

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/certify"
)

func certGrid() runner.Grid {
	// A torus under DOR is the textbook cyclic pre-removal design; the
	// mesh is its acyclic control. Two seeds exercise the grouped
	// scheduler's per-member derivation.
	return runner.Grid{
		Benchmarks:   []string{"mesh:3x3", "torus:4x4"},
		SwitchCounts: []int{9},
		Policies:     []string{"smallest"},
		Seeds:        []int64{0, 1},
	}
}

// TestCertifyStage runs a simulated + certified sweep and asserts the
// three legs agree on every cell: the checker's pre verdict matches the
// structural one (torus DOR cyclic, mesh DOR acyclic), every post design
// certifies acyclic, and no cell records a mismatch.
func TestCertifyStage(t *testing.T) {
	rep, err := runner.Run(certGrid(), runner.Options{
		Simulate: true,
		Sim:      runner.SimParams{Cycles: 3000, Load: 0.8},
		Certify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Error != "" {
			t.Fatalf("%s: %s", r.Benchmark, r.Error)
		}
		c := r.Certify
		if c == nil {
			t.Fatalf("%s seed %d: no certify leg", r.Benchmark, r.Seed)
		}
		if !c.Agree {
			t.Fatalf("%s seed %d: three-leg disagreement: %s", r.Benchmark, r.Seed, c.Mismatch)
		}
		if c.Salt != certify.Salt {
			t.Fatalf("%s: certificate salt %q", r.Benchmark, c.Salt)
		}
		if !c.PostAcyclic || c.PostSHA256 == "" {
			t.Fatalf("%s: post leg %+v", r.Benchmark, c)
		}
		if c.PreAcyclic != r.InitialAcyclic {
			t.Fatalf("%s: checker pre=%v, structural pre=%v", r.Benchmark, c.PreAcyclic, r.InitialAcyclic)
		}
		if !c.PreAcyclic && c.PreCycleLen == 0 {
			t.Fatalf("%s: cyclic pre design without a counterexample witness", r.Benchmark)
		}
	}
	// The grid must include both a cyclic and an acyclic pre design, or
	// the agreement assertions above were vacuous on one side.
	pre := map[bool]bool{}
	for _, r := range rep.Results {
		pre[r.Certify.PreAcyclic] = true
	}
	if !pre[true] || !pre[false] {
		t.Fatalf("grid covered only pre_acyclic=%v designs", pre)
	}
}

// TestCertifyByteIdentical pins the determinism contract for certified
// runs: serial, parallel, and uncached-vs-cached sweeps produce
// byte-identical reports.
func TestCertifyByteIdentical(t *testing.T) {
	grid := certGrid()
	opts := runner.Options{Simulate: true, Sim: runner.SimParams{Cycles: 3000, Load: 0.8}, Certify: true}

	serial, err := runner.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	par := opts
	par.Parallel = 4
	parallel, err := runner.Run(grid, par)
	if err != nil {
		t.Fatal(err)
	}
	cacheOpts := opts
	cacheOpts.CellCache = newMapCache()
	cold, err := runner.Run(grid, cacheOpts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := runner.Run(grid, cacheOpts)
	if err != nil {
		t.Fatal(err)
	}

	enc := func(r *runner.Report) []byte {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := enc(serial)
	for name, rep := range map[string]*runner.Report{"parallel": parallel, "cold-cached": cold, "warm-cached": warm} {
		if got := enc(rep); !bytes.Equal(want, got) {
			t.Fatalf("%s report differs from serial", name)
		}
	}
}

// TestCertifyCellKey pins that the certify flag participates in the cell
// address: a certified and an uncertified evaluation of the same cell
// must never alias (their Results differ).
func TestCertifyCellKey(t *testing.T) {
	job := runner.Job{Benchmark: "mesh:3x3", SwitchCount: 9, Policy: "smallest"}
	plain := runner.CellKey(job, runner.Options{}, nil)
	certified := runner.CellKey(job, runner.Options{Certify: true}, nil)
	if plain == certified {
		t.Fatal("certified and uncertified cells share a cache address")
	}
}

// TestCertifyPoisonedSaltRecomputes is the poisoned-salt regression: a
// cache entry stored under the correct address but carrying a
// certificate from a different checker build (possible when the cache
// persisted across a checker change without an engine-salt bump) must be
// treated as a miss — the cell re-certifies and the refreshed entry
// carries the running salt.
func TestCertifyPoisonedSaltRecomputes(t *testing.T) {
	grid := runner.Grid{
		Benchmarks:   []string{"torus:3x3"},
		SwitchCounts: []int{9},
		Policies:     []string{"smallest"},
		Seeds:        []int64{0},
	}
	opts := runner.Options{Certify: true, CellCache: newMapCache()}
	cache := opts.CellCache.(*mapCache)

	first, err := runner.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.len() == 0 {
		t.Fatal("certified run stored nothing")
	}

	// Poison every stored entry: same key, stale checker salt.
	key := runner.CellKey(grid.Jobs()[0], opts, nil)
	data, ok := cache.Get(key)
	if !ok {
		t.Fatal("cell entry missing from cache")
	}
	var r runner.Result
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Certify == nil {
		t.Fatal("stored result has no certify leg")
	}
	r.Certify.Salt = "nocdr-certify/0-stale"
	r.Certify.Agree = false
	r.Certify.Mismatch = "poisoned"
	poisoned, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(key, poisoned)

	// A cached run must reject the poisoned hit and re-certify...
	second, err := runner.Run(grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := second.Results[0].Certify
	if got == nil || got.Salt != certify.Salt || !got.Agree {
		t.Fatalf("poisoned entry was reused: %+v", got)
	}
	// ...and refresh the stored entry with the running salt.
	data, _ = cache.Get(key)
	var refreshed runner.Result
	if err := json.Unmarshal(data, &refreshed); err != nil {
		t.Fatal(err)
	}
	if refreshed.Certify == nil || refreshed.Certify.Salt != certify.Salt {
		t.Fatalf("cache still holds the stale certificate: %+v", refreshed.Certify)
	}
	// The recomputed report matches the first run byte for byte.
	var a, b bytes.Buffer
	if err := first.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := second.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-certified report differs from the original")
	}
}

// TestCertifyNoCacheBypassesCertificates pins the -no-cache half of the
// fix: with NoCache set, even a correctly-salted cached cell is
// recomputed (lookups are skipped entirely), and a poisoned entry is
// overwritten by the refresh.
func TestCertifyNoCacheBypassesCertificates(t *testing.T) {
	grid := runner.Grid{
		Benchmarks:   []string{"mesh:3x3"},
		SwitchCounts: []int{9},
		Policies:     []string{"smallest"},
		Seeds:        []int64{0},
	}
	cache := newMapCache()
	opts := runner.Options{Certify: true, CellCache: cache}
	if _, err := runner.Run(grid, opts); err != nil {
		t.Fatal(err)
	}
	key := runner.CellKey(grid.Jobs()[0], opts, nil)
	data, ok := cache.Get(key)
	if !ok {
		t.Fatal("cell entry missing")
	}
	var r runner.Result
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	r.Certify.Salt = "stale"
	poisoned, _ := json.Marshal(r)
	cache.Put(key, poisoned)

	noCache := opts
	noCache.NoCache = true
	rep, err := runner.Run(grid, noCache)
	if err != nil {
		t.Fatal(err)
	}
	if c := rep.Results[0].Certify; c == nil || c.Salt != certify.Salt {
		t.Fatalf("no-cache run served a stored certificate: %+v", c)
	}
	data, _ = cache.Get(key)
	var refreshed runner.Result
	if err := json.Unmarshal(data, &refreshed); err != nil {
		t.Fatal(err)
	}
	if refreshed.Certify.Salt != certify.Salt {
		t.Fatal("no-cache run did not refresh the poisoned entry")
	}
}
