// Package reconfig turns the batch deadlock-removal pipeline into a live
// one: a Design bundles everything a removed network needs to keep
// evolving (grid shape, turn model, topology with its VC assignment,
// traffic, candidate routes), and State applies fault events to it
// online — rerouting only the displaced flows, replaying the removal
// from the existing VC assignment, and reporting the change as a typed
// Delta instead of a fresh design. The differential tests pin the online
// path against from-scratch removal on the faulted topology: same
// acyclicity verdict, never more VCs.
package reconfig

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// Design is a self-contained removed design: the artifact `nocexp
// design` writes, `nocexp reconfigure` evolves, and /v1/reconfigure
// accepts. Topology carries the VC assignment (extra VCs from removal)
// and the fault mask; Routes is the adaptive candidate set whose union
// CDG is acyclic. Grid, Model and MaxPaths record how the routes were
// generated, which is what lets a fault event regenerate just the
// displaced flows under identical semantics.
type Design struct {
	Grid     route.GridSpec
	Model    route.TurnModel
	MaxPaths int
	Topology *topology.Topology
	Traffic  *traffic.Graph
	Routes   *route.RouteSet
}

// New builds a removed Design from a regular grid: turn-model candidate
// routes (GridRoutes semantics, including the BFS fault escape), then
// RemoveSet to an acyclic union CDG under opts. The grid topology is not
// mutated.
func New(g *regular.Grid, tr *traffic.Graph, model route.TurnModel, maxPaths int, opts core.Options) (*Design, *core.SetResult, error) {
	return NewContext(context.Background(), g, tr, model, maxPaths, opts)
}

// NewContext is New with cooperative cancellation.
func NewContext(ctx context.Context, g *regular.Grid, tr *traffic.Graph, model route.TurnModel, maxPaths int, opts core.Options) (*Design, *core.SetResult, error) {
	set, err := route.GridRoutes(g.Topology, tr, g.Spec(), model, maxPaths)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.RemoveSetContext(ctx, g.Topology, set, opts)
	if err != nil {
		return nil, nil, err
	}
	d := &Design{
		Grid:     g.Spec(),
		Model:    model,
		MaxPaths: maxPaths,
		Topology: res.Topology,
		Traffic:  tr.Clone(),
		Routes:   res.Routes,
	}
	return d, res, nil
}

// Clone returns a deep copy of the design.
func (d *Design) Clone() *Design {
	return &Design{
		Grid:     d.Grid,
		Model:    d.Model,
		MaxPaths: d.MaxPaths,
		Topology: d.Topology.Clone(),
		Traffic:  d.Traffic.Clone(),
		Routes:   d.Routes.Clone(),
	}
}

// Verify checks the design invariant a reconfiguration must preserve:
// the candidate set validates against the topology and traffic (faulted
// links avoided, walks contiguous) and its union CDG is acyclic.
func (d *Design) Verify() error {
	if err := d.Routes.Validate(d.Topology, d.Traffic); err != nil {
		return err
	}
	ok, err := core.DeadlockFreeSet(d.Topology, d.Routes)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: design union CDG cyclic", nocerr.ErrCyclicCDG)
	}
	return nil
}

// ColdRemove is the from-scratch baseline the differential tests and the
// smoke CI compare the online path against: rebuild the design's grid
// fresh (base VCs only), re-apply its fault set, regenerate every flow's
// candidates, and run a full RemoveSet. The design itself is untouched.
func ColdRemove(ctx context.Context, d *Design, opts core.Options) (*core.SetResult, error) {
	g, err := d.freshGrid()
	if err != nil {
		return nil, err
	}
	if faults := d.Topology.FaultedLinks(); len(faults) > 0 {
		if err := g.Topology.Fault(faults...); err != nil {
			return nil, err
		}
	}
	set, err := route.GridRoutes(g.Topology, d.Traffic, d.Grid, d.Model, d.MaxPaths)
	if err != nil {
		return nil, err
	}
	return core.RemoveSetContext(ctx, g.Topology, set, opts)
}

// freshGrid rebuilds the design's base grid (1 VC per link, no faults)
// from its recorded shape. Designs are grid-born by construction — New
// is the only producer — so link IDs line up with the design's own.
func (d *Design) freshGrid() (*regular.Grid, error) {
	if d.Grid.Wrap {
		return regular.Torus(d.Grid.Cols, d.Grid.Rows)
	}
	return regular.Mesh(d.Grid.Cols, d.Grid.Rows)
}

type jsonDesign struct {
	Version  int             `json:"version"`
	Grid     jsonGrid        `json:"grid"`
	Routing  string          `json:"routing"`
	MaxPaths int             `json:"max_paths"`
	Topology json.RawMessage `json:"topology"`
	Traffic  json.RawMessage `json:"traffic"`
	Routes   json.RawMessage `json:"routes"`
}

type jsonGrid struct {
	Cols int  `json:"cols"`
	Rows int  `json:"rows"`
	Wrap bool `json:"wrap,omitempty"`
}

// MarshalJSON encodes the design as a versioned bundle of the existing
// per-artifact schemas.
func (d *Design) MarshalJSON() ([]byte, error) {
	top, err := d.Topology.MarshalJSON()
	if err != nil {
		return nil, err
	}
	tr, err := d.Traffic.MarshalJSON()
	if err != nil {
		return nil, err
	}
	rs, err := d.Routes.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(jsonDesign{
		Version:  1,
		Grid:     jsonGrid{Cols: d.Grid.Cols, Rows: d.Grid.Rows, Wrap: d.Grid.Wrap},
		Routing:  d.Model.String(),
		MaxPaths: d.MaxPaths,
		Topology: top,
		Traffic:  tr,
		Routes:   rs,
	}, "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON.
func (d *Design) UnmarshalJSON(data []byte) error {
	var jd jsonDesign
	if err := json.Unmarshal(data, &jd); err != nil {
		return fmt.Errorf("reconfig: %w: %w", nocerr.ErrInvalidInput, err)
	}
	if jd.Version != 1 {
		return fmt.Errorf("reconfig: unsupported design version %d: %w", jd.Version, nocerr.ErrInvalidInput)
	}
	model, err := route.ParseTurnModel(jd.Routing)
	if err != nil {
		return err
	}
	top := topology.New("")
	if err := top.UnmarshalJSON(jd.Topology); err != nil {
		return err
	}
	tr := traffic.NewGraph("")
	if err := tr.UnmarshalJSON(jd.Traffic); err != nil {
		return err
	}
	rs := route.NewRouteSet(0)
	if err := rs.UnmarshalJSON(jd.Routes); err != nil {
		return err
	}
	*d = Design{
		Grid:     route.GridSpec{Cols: jd.Grid.Cols, Rows: jd.Grid.Rows, Wrap: jd.Grid.Wrap},
		Model:    model,
		MaxPaths: jd.MaxPaths,
		Topology: top,
		Traffic:  tr,
		Routes:   rs,
	}
	return nil
}

// Write serializes the design as JSON to w.
func (d *Design) Write(w io.Writer) error {
	data, err := d.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadDesign parses a design bundle from JSON.
func ReadDesign(r io.Reader) (*Design, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	d := &Design{}
	if err := d.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return d, nil
}
