package reconfig

import (
	"bytes"
	"context"
	"testing"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// FuzzReconfigDelta drives one live design through an arbitrary fault
// order and pins the two invariants the online path must never lose: the
// committed design stays valid (acyclic union CDG, fault-avoiding
// routes) after every event — failed events included, thanks to rollback
// — and every committed Delta round-trips through JSON byte-identically.
func FuzzReconfigDelta(f *testing.F) {
	g := mustGrid(f, false, 4, 4)
	tr := allToAll(f, 16)
	base := buildDesign(f, g, tr, route.OddEven)
	nLinks := base.Topology.NumLinks()

	f.Add([]byte{0})
	f.Add([]byte{3, 3})           // duplicate fault: second must fail cleanly
	f.Add([]byte{7, 21, 42, 250}) // out-of-range bytes wrap onto valid links
	f.Add([]byte{1, 2, 4, 8, 16, 32})
	f.Fuzz(func(t *testing.T, faults []byte) {
		if len(faults) > 6 {
			faults = faults[:6] // bound per-exec work, arbitrary order stays covered
		}
		st, err := NewState(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range faults {
			link := topology.LinkID(int(b) % nLinks)
			delta, err := st.ApplyFault(context.Background(), link, Options{SkipSim: true})
			if err != nil {
				// Legal refusals: repeated fault, disconnection, VC budget.
				// The design must have been rolled back intact either way.
				if verr := st.Design().Verify(); verr != nil {
					t.Fatalf("fault %d failed (%v) and left design invalid: %v", link, err, verr)
				}
				continue
			}
			if verr := st.Design().Verify(); verr != nil {
				t.Fatalf("fault %d committed an invalid design: %v", link, verr)
			}
			j1, err := delta.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ReadDelta(bytes.NewReader(j1))
			if err != nil {
				t.Fatalf("delta does not re-parse: %v", err)
			}
			j2, err := back.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1, j2) {
				t.Fatalf("delta JSON not stable:\n%s\nvs\n%s", j1, j2)
			}
		}
	})
}
