package reconfig

import (
	"context"
	"fmt"
	"sort"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// Reconfiguration stages, in state-machine order (DESIGN.md §9):
// a fault event moves the state running → rerouting → replaying →
// simulating → committed, or to rolled_back from any middle stage.
const (
	StageRerouting  = "rerouting"
	StageReplaying  = "replaying"
	StageSimulating = "simulating"
	StageCommitted  = "committed"
	StageRolledBack = "rolled_back"
)

// Options parameterizes one fault event.
type Options struct {
	// VCLimit bounds the VCs the replay may add (0 = unlimited);
	// MaxIterations bounds its cycle breaks; Selection and Policy pick
	// cycles and break directions exactly as in core.Options.
	VCLimit       int
	MaxIterations int
	Selection     core.CycleSelection
	Policy        core.DirectionPolicy
	// OnStage observes state-machine transitions; OnBreak observes each
	// replay break with real flow IDs.
	OnStage func(stage string, fault topology.LinkID)
	OnBreak func(core.BreakRecord)
	// SkipSim omits the downtime estimate (benchmarks, smoke paths).
	SkipSim bool
	// SimCycles is the downtime simulation horizon. Default 100000.
	SimCycles int64
}

func (o Options) simCycles() int64 {
	if o.SimCycles > 0 {
		return o.SimCycles
	}
	return 100000
}

// State is a live reconfigurable design: the Design plus the removal
// machinery kept warm between fault events — the flattened pseudo-flow
// table, the pseudo-flow → (flow, path) mapping, and the incremental
// CDG the next replay resumes from. Not safe for concurrent use; the
// serve layer serializes events per job.
type State struct {
	design *Design
	// tab is the live flattened table: one pseudo-flow per candidate
	// path, aligned with the CDG's edge attribution. refs maps pseudo →
	// real flow; dead marks pseudo slots whose flow now has fewer
	// candidates than it once did (slots are never reused — pseudo-flow
	// identity must stay stable across events, new candidates append).
	tab  *route.Table
	refs []route.PathRef
	dead []bool
	m    *cdg.Incremental
}

// NewState wraps a design for online reconfiguration. The design is
// deep-copied; the caller's copy never changes. Fails with ErrCyclicCDG
// if the design's union CDG is not acyclic (it was not removed).
func NewState(d *Design) (*State, error) {
	d = d.Clone()
	tab, refs := d.Routes.Flatten()
	m, err := cdg.BuildIncremental(d.Topology, tab)
	if err != nil {
		return nil, err
	}
	if !m.Acyclic() {
		return nil, fmt.Errorf("%w: design CDG cyclic; run removal before reconfiguring", nocerr.ErrCyclicCDG)
	}
	return &State{
		design: d,
		tab:    tab,
		refs:   refs,
		dead:   make([]bool, len(refs)),
		m:      m,
	}, nil
}

// Design returns the current committed design. Callers must treat it as
// read-only; ApplyFault swaps it wholesale on commit.
func (s *State) Design() *Design { return s.design }

// ApplyFault applies one link-fault event to the live design: reroute
// the displaced flows under the design's own turn model (BFS escape
// included), replay the removal from the existing VC assignment, verify,
// estimate downtime, and commit — or roll everything back, leaving the
// design byte-identical to before the call. The returned Delta describes
// the committed change.
func (s *State) ApplyFault(ctx context.Context, link topology.LinkID, opts Options) (*Delta, error) {
	if int(link) < 0 || int(link) >= s.design.Topology.NumLinks() {
		return nil, fmt.Errorf("reconfig: no link %d in design: %w", link, nocerr.ErrNotFound)
	}
	if s.design.Topology.Faulted(link) {
		return nil, fmt.Errorf("reconfig: link %d already faulted: %w", link, nocerr.ErrInvalidInput)
	}
	stage := func(st string) {
		if opts.OnStage != nil {
			opts.OnStage(st, link)
		}
	}

	// Work on copies; the committed state is only swapped in at the end.
	// The CDG is the one exception — it is mutated in place (that is the
	// point of warm-starting) and rescued by the snapshot on any error.
	snap := s.m.Snapshot()
	workTop := s.design.Topology.Clone()
	if err := workTop.Fault(link); err != nil {
		return nil, err
	}
	s.m.Rebind(workTop)
	workTab := s.tab.Clone()
	workRefs := append([]route.PathRef(nil), s.refs...)
	workDead := append([]bool(nil), s.dead...)
	rollback := func() {
		s.m.Restore(snap)
		stage(StageRolledBack)
	}

	affected := s.design.Routes.FlowsThrough(link)
	stage(StageRerouting)
	regen, err := route.RegenerateFlows(workTop, s.design.Traffic, s.design.Grid, s.design.Model, s.design.MaxPaths, affected)
	if err != nil {
		rollback()
		return nil, err
	}

	// Splice the regenerated candidates in: pair each affected flow's
	// live pseudo slots with its new paths index-wise, emptying surplus
	// slots and appending fresh ones, mirroring every change into the
	// CDG as an edge delta.
	livePseudo := make(map[int][]int, len(affected))
	for p, ref := range workRefs {
		if !workDead[p] {
			livePseudo[ref.FlowID] = append(livePseudo[ref.FlowID], p)
		}
	}
	for _, f := range affected {
		oldPs := livePseudo[f]
		newPaths := regen[f]
		n := len(oldPs)
		if len(newPaths) > n {
			n = len(newPaths)
		}
		for i := 0; i < n; i++ {
			switch {
			case i < len(oldPs) && i < len(newPaths):
				p := oldPs[i]
				old := workTab.Route(p).Channels
				if err := s.m.ApplyReroute(cdg.Reroute{FlowID: p, Old: old, New: newPaths[i]}); err != nil {
					rollback()
					return nil, err
				}
				workTab.Set(p, append([]topology.Channel(nil), newPaths[i]...))
			case i < len(oldPs):
				p := oldPs[i]
				old := workTab.Route(p).Channels
				if err := s.m.ApplyReroute(cdg.Reroute{FlowID: p, Old: old, New: nil}); err != nil {
					rollback()
					return nil, err
				}
				workTab.Set(p, nil)
				workDead[p] = true
			default:
				p := len(workRefs)
				workRefs = append(workRefs, route.PathRef{FlowID: f, Index: i})
				workDead = append(workDead, false)
				if err := s.m.ApplyReroute(cdg.Reroute{FlowID: p, Old: nil, New: newPaths[i]}); err != nil {
					rollback()
					return nil, err
				}
				workTab.Set(p, append([]topology.Channel(nil), newPaths[i]...))
			}
		}
	}

	stage(StageReplaying)
	coreOpts := core.Options{
		VCLimit:       opts.VCLimit,
		MaxIterations: opts.MaxIterations,
		Selection:     opts.Selection,
		Policy:        opts.Policy,
	}
	if opts.OnBreak != nil {
		refsNow := workRefs
		coreOpts.OnBreak = func(rec core.BreakRecord) {
			rec.Reroutes = realFlowIDs(rec.Reroutes, refsNow)
			opts.OnBreak(rec)
		}
	}
	res, err := core.ResumeContext(ctx, workTop, workTab, s.m, coreOpts)
	if err != nil {
		rollback()
		return nil, err
	}

	newSet := route.NewRouteSet(s.design.Traffic.NumFlows())
	for p, ref := range workRefs {
		if workDead[p] {
			continue
		}
		newSet.AppendPath(ref.FlowID, workTab.Route(p).Channels)
	}
	if err := newSet.Validate(workTop, s.design.Traffic); err != nil {
		rollback()
		return nil, fmt.Errorf("reconfig: post-replay set invalid: %w", err)
	}

	delta := s.buildDelta(link, workTop, newSet, res, workRefs)

	if !opts.SkipSim && len(delta.FlowsMoved) > 0 {
		stage(StageSimulating)
		dt, err := estimateDowntime(ctx, workTop, s.design.Traffic, newSet, delta.FlowsMoved, opts.simCycles())
		if err != nil {
			rollback()
			return nil, err
		}
		if dt.Deadlocked {
			rollback()
			return nil, fmt.Errorf("%w: post-reconfig witness simulation deadlocked", nocerr.ErrCyclicCDG)
		}
		delta.Downtime = dt
	}

	s.design.Topology = workTop
	s.design.Routes = newSet
	s.tab = workTab
	s.refs = workRefs
	s.dead = workDead
	stage(StageCommitted)
	return delta, nil
}

// buildDelta assembles the report from the replay result and the
// before/after candidate sets.
func (s *State) buildDelta(link topology.LinkID, workTop *topology.Topology, newSet *route.RouteSet, res *core.Result, refs []route.PathRef) *Delta {
	moved := make(map[int]bool)
	for f := 0; f < s.design.Traffic.NumFlows(); f++ {
		if !pathsEqual(s.design.Routes.Paths(f), newSet.Paths(f)) {
			moved[f] = true
		}
	}
	flowsMoved := make([]int, 0, len(moved))
	for f := range moved {
		flowsMoved = append(flowsMoved, f)
	}
	sort.Ints(flowsMoved)

	before := linkPathCounts(s.design.Routes)
	after := linkPathCounts(newSet)
	retired := []int{}
	for l, n := range before {
		if n > 0 && after[l] == 0 {
			retired = append(retired, int(l))
		}
	}
	sort.Ints(retired)

	d := &Delta{
		Fault:         int(link),
		FlowsMoved:    flowsMoved,
		PathsBefore:   s.design.Routes.TotalPaths(),
		PathsAfter:    newSet.TotalPaths(),
		VCsAdded:      res.AddedVCs,
		TotalExtraVCs: workTop.ExtraVCs(),
		LinksRetired:  retired,
		Iterations:    res.Iterations,
		Breaks:        deltaBreaks(res.Breaks, refs),
		Acyclic:       true,
	}
	d.normalize()
	return d
}

func pathsEqual(a, b [][]topology.Channel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// estimateDowntime runs a drain simulation of the committed design under
// a witness workload that saturates the moved flows (one 16-flit packet
// each at full bandwidth) while background flows inject negligibly: the
// cycle count until the last moved flow's worm drains is the downtime
// estimate. A deadlock here would mean the replay's acyclicity proof and
// the simulator disagree — the caller rolls back and errors.
func estimateDowntime(ctx context.Context, top *topology.Topology, tr *traffic.Graph, set *route.RouteSet, moved []int, maxCycles int64) (Downtime, error) {
	isMoved := make(map[int]bool, len(moved))
	for _, f := range moved {
		isMoved[f] = true
	}
	witness := traffic.NewGraph(tr.Name + "_reconfig_witness")
	for _, c := range tr.Cores() {
		witness.AddCore(c.Name)
	}
	for _, f := range tr.Flows() {
		bw := 0.001
		if isMoved[f.ID] {
			bw = 100
		}
		id, err := witness.AddFlow(f.Src, f.Dst, bw)
		if err != nil {
			return Downtime{}, fmt.Errorf("reconfig: witness workload: %w", err)
		}
		flits := 4
		if isMoved[f.ID] {
			flits = 16
		}
		if err := witness.SetPacketFlits(id, flits); err != nil {
			return Downtime{}, fmt.Errorf("reconfig: witness workload: %w", err)
		}
	}
	sim, err := wormhole.NewAdaptive(top, witness, set, wormhole.Config{
		MaxCycles:      maxCycles,
		PacketsPerFlow: 1,
	})
	if err != nil {
		return Downtime{}, err
	}
	stats, err := sim.RunContext(ctx)
	if err != nil {
		return Downtime{}, err
	}
	return Downtime{
		Cycles:     stats.Cycles,
		Drained:    stats.Drained,
		Deadlocked: stats.Deadlocked,
		Simulated:  true,
	}, nil
}
