package reconfig

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// matrixModels is the PR 4 turn-model matrix the differential property
// must hold on (DOR is excluded by contract: it cannot route around
// faults at all).
var matrixModels = []route.TurnModel{
	route.WestFirst, route.NorthLast, route.NegativeFirst, route.OddEven, route.MinimalAdaptive,
}

// allToAll builds one core per switch and a flow per ordered pair.
func allToAll(t testing.TB, n int) *traffic.Graph {
	t.Helper()
	g := traffic.NewGraph(fmt.Sprintf("all2all_%d", n))
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				g.MustAddFlow(traffic.CoreID(s), traffic.CoreID(d), 10)
			}
		}
	}
	return g
}

func mustGrid(t testing.TB, wrap bool, cols, rows int) *regular.Grid {
	t.Helper()
	var g *regular.Grid
	var err error
	if wrap {
		g, err = regular.Torus(cols, rows)
	} else {
		g, err = regular.Mesh(cols, rows)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildDesign(t testing.TB, g *regular.Grid, tr *traffic.Graph, model route.TurnModel) *Design {
	t.Helper()
	d, _, err := New(g, tr, model, 2, core.Options{})
	if err != nil {
		t.Fatalf("%s: New: %v", model, err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("%s: fresh design invalid: %v", model, err)
	}
	return d
}

func designJSON(t testing.TB, d *Design) []byte {
	t.Helper()
	data, err := d.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestApplyFaultDifferential is the tentpole equivalence: for every
// (grid × turn-model × fault) cell, the online reconfiguration must end
// acyclic, use no more total VCs than a from-scratch RemoveSet on the
// faulted topology, survive the witness drain simulation without
// deadlock (ApplyFault errors on one), and be deterministic run-to-run.
func TestApplyFaultDifferential(t *testing.T) {
	grids := []struct {
		wrap       bool
		cols, rows int
	}{
		{false, 4, 4},
		{false, 5, 4},
		{true, 4, 4},
	}
	for _, gs := range grids {
		g := mustGrid(t, gs.wrap, gs.cols, gs.rows)
		tr := allToAll(t, gs.cols*gs.rows)
		for _, model := range matrixModels {
			d := buildDesign(t, g, tr, model)
			for seed := int64(0); seed < 2; seed++ {
				name := fmt.Sprintf("wrap=%v_%dx%d_%s_seed%d", gs.wrap, gs.cols, gs.rows, model, seed)
				t.Run(name, func(t *testing.T) {
					faults, err := regular.SelectFaults(g, 1, seed)
					if err != nil {
						t.Fatal(err)
					}
					run := func() (*Design, *Delta) {
						st, err := NewState(d)
						if err != nil {
							t.Fatal(err)
						}
						delta, err := st.ApplyFault(context.Background(), faults[0], Options{SimCycles: 50000})
						if err != nil {
							t.Fatalf("ApplyFault(%d): %v", faults[0], err)
						}
						return st.Design(), delta
					}
					got, delta := run()

					if err := got.Verify(); err != nil {
						t.Fatalf("committed design invalid: %v", err)
					}
					if !delta.Acyclic || delta.VCsAdded < 0 {
						t.Fatalf("bad delta: %+v", delta)
					}
					if delta.Downtime.Deadlocked || !delta.Downtime.Simulated {
						t.Fatalf("downtime estimate: %+v", delta.Downtime)
					}

					cold, err := ColdRemove(context.Background(), got, core.Options{})
					if err != nil {
						t.Fatalf("ColdRemove: %v", err)
					}
					// The replay's own additions must never exceed the full
					// from-scratch cost: paying more VCs for a delta than a
					// whole redo would make the online path pointless. The
					// design's cumulative total is NOT bounded by the cold
					// run — a warm start deliberately keeps the pre-fault
					// assignment (no global drain), including VCs a fresh
					// removal of the faulted grid wouldn't spend.
					if delta.VCsAdded > cold.AddedVCs {
						t.Errorf("replay added %d VCs, from-scratch removal only needs %d", delta.VCsAdded, cold.AddedVCs)
					}

					// Determinism: a second run from the same inputs must
					// produce the identical design and delta, byte for byte.
					got2, delta2 := run()
					if !bytes.Equal(designJSON(t, got), designJSON(t, got2)) {
						t.Error("committed designs differ across identical runs")
					}
					dj1, _ := delta.MarshalJSON()
					dj2, _ := delta2.MarshalJSON()
					if !bytes.Equal(dj1, dj2) {
						t.Error("deltas differ across identical runs")
					}
				})
			}
		}
	}
}

// TestApplyFaultSequential drives one state through a seeded fault storm
// until SelectFaults finds no safe fault, verifying the committed design
// after every event — the long-lived-service scenario.
func TestApplyFaultSequential(t *testing.T) {
	g := mustGrid(t, false, 4, 4)
	tr := allToAll(t, 16)
	d := buildDesign(t, g, tr, route.OddEven)
	st, err := NewState(d)
	if err != nil {
		t.Fatal(err)
	}
	live := mustGrid(t, false, 4, 4) // tracks the fault set for SelectFaults
	events := 0
	for {
		faults, err := regular.SelectFaults(live, 1, int64(events))
		if err != nil {
			break // no safe fault left: clean stop
		}
		if _, err := st.ApplyFault(context.Background(), faults[0], Options{SkipSim: true}); err != nil {
			t.Fatalf("event %d fault %d: %v", events, faults[0], err)
		}
		if err := live.Topology.Fault(faults[0]); err != nil {
			t.Fatal(err)
		}
		if err := st.Design().Verify(); err != nil {
			t.Fatalf("event %d: committed design invalid: %v", events, err)
		}
		events++
		if events > 64 {
			t.Fatal("fault storm did not terminate")
		}
	}
	if events == 0 {
		t.Fatal("no fault event ran; storm test is vacuous")
	}
}

// TestApplyFaultRollbackByteIdentical pins the satellite bugfix: a
// failed reconfiguration must leave the design byte-identical and the
// state fully usable — the next event must succeed exactly as if the
// failure never happened.
func TestApplyFaultRollbackByteIdentical(t *testing.T) {
	g := mustGrid(t, false, 4, 4)
	tr := allToAll(t, 16)
	d := buildDesign(t, g, tr, route.MinimalAdaptive)
	st, err := NewState(d)
	if err != nil {
		t.Fatal(err)
	}
	before := designJSON(t, st.Design())
	faults, err := regular.SelectFaults(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Forced failure: an already-canceled context aborts the replay.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stages []string
	_, err = st.ApplyFault(ctx, faults[0], Options{
		OnStage: func(s string, _ topology.LinkID) { stages = append(stages, s) },
	})
	if !errors.Is(err, nocerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(stages) == 0 || stages[len(stages)-1] != StageRolledBack {
		t.Fatalf("stages = %v, want trailing %q", stages, StageRolledBack)
	}
	if after := designJSON(t, st.Design()); !bytes.Equal(before, after) {
		t.Fatal("failed reconfigure mutated the design")
	}

	// The rescued state must behave exactly like a fresh one.
	deltaRescued, err := st.ApplyFault(context.Background(), faults[0], Options{SkipSim: true})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewState(d)
	if err != nil {
		t.Fatal(err)
	}
	deltaFresh, err := fresh.ApplyFault(context.Background(), faults[0], Options{SkipSim: true})
	if err != nil {
		t.Fatal(err)
	}
	rj, _ := deltaRescued.MarshalJSON()
	fj, _ := deltaFresh.MarshalJSON()
	if !bytes.Equal(rj, fj) {
		t.Fatal("post-rollback event diverges from fresh state")
	}
	if !bytes.Equal(designJSON(t, st.Design()), designJSON(t, fresh.Design())) {
		t.Fatal("post-rollback committed design diverges from fresh state")
	}
}

// TestApplyFaultInputValidation covers the error surface.
func TestApplyFaultInputValidation(t *testing.T) {
	g := mustGrid(t, false, 3, 3)
	tr := allToAll(t, 9)
	d := buildDesign(t, g, tr, route.OddEven)
	st, err := NewState(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyFault(context.Background(), topology.LinkID(9999), Options{}); !errors.Is(err, nocerr.ErrNotFound) {
		t.Errorf("unknown link: err = %v, want ErrNotFound", err)
	}
	faults, err := regular.SelectFaults(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyFault(context.Background(), faults[0], Options{SkipSim: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyFault(context.Background(), faults[0], Options{}); !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Errorf("re-fault: err = %v, want ErrInvalidInput", err)
	}
}

// TestNewStateRejectsCyclicDesign pins the precondition.
func TestNewStateRejectsCyclicDesign(t *testing.T) {
	g := mustGrid(t, false, 4, 4)
	tr := allToAll(t, 16)
	set, err := route.GridRoutes(g.Topology, tr, g.Spec(), route.MinimalAdaptive, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := &Design{Grid: g.Spec(), Model: route.MinimalAdaptive, MaxPaths: 2,
		Topology: g.Topology.Clone(), Traffic: tr.Clone(), Routes: set}
	if _, err := NewState(d); !errors.Is(err, nocerr.ErrCyclicCDG) {
		t.Fatalf("err = %v, want ErrCyclicCDG (min-adaptive 4x4 is cyclic pre-removal)", err)
	}
}

// TestDesignJSONRoundTrip pins the bundle schema.
func TestDesignJSONRoundTrip(t *testing.T) {
	g := mustGrid(t, true, 4, 4)
	tr := allToAll(t, 16)
	d := buildDesign(t, g, tr, route.WestFirst)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(designJSON(t, got), designJSON(t, d)) {
		t.Fatal("design did not round-trip byte-identically")
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDesign(bytes.NewReader([]byte(`{"version":2}`))); !errors.Is(err, nocerr.ErrInvalidInput) {
		t.Errorf("version 2: err = %v, want ErrInvalidInput", err)
	}
}
