package reconfig

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
)

// Delta is the typed report of one committed reconfiguration: what a
// fault event changed relative to the design it was applied to. It is
// the payload of the reconfig_delta event, the JSON `nocexp reconfigure
// -delta` writes, and the body the /v1/reconfigure job returns. All
// fields are plain JSON types so the report round-trips byte-identically
// (pinned by FuzzReconfigDelta).
type Delta struct {
	// Fault is the link the event retired.
	Fault int `json:"fault"`
	// FlowsMoved lists, ascending, every flow whose candidate set
	// changed — the flows displaced by the fault plus any the removal
	// replay rerouted onto new VCs.
	FlowsMoved []int `json:"flows_moved"`
	// PathsBefore/PathsAfter count total candidate paths across flows.
	PathsBefore int `json:"paths_before"`
	PathsAfter  int `json:"paths_after"`
	// VCsAdded is the replay's own additions; TotalExtraVCs is the
	// design's cumulative extra-VC count after commit.
	VCsAdded      int `json:"vcs_added"`
	TotalExtraVCs int `json:"total_extra_vcs"`
	// LinksRetired lists links that carried at least one candidate path
	// before the event and none after (the faulted link, when used, plus
	// any links the reroutes abandoned), ascending.
	LinksRetired []int `json:"links_retired"`
	// Iterations counts replay cycle breaks; Breaks logs them in order.
	Iterations int          `json:"iterations"`
	Breaks     []DeltaBreak `json:"breaks"`
	// Acyclic is the committed design's union-CDG verdict (always true
	// for a committed delta; recorded so the report is self-contained).
	Acyclic bool `json:"acyclic"`
	// Downtime is the simulator-derived estimate of the transition cost.
	Downtime Downtime `json:"downtime"`
}

// DeltaBreak is one replay cycle break in report form: real flow IDs,
// plain channel pairs.
type DeltaBreak struct {
	Direction   string         `json:"direction"`
	EdgePos     int            `json:"edge_pos"`
	Cost        int            `json:"cost"`
	CycleLen    int            `json:"cycle_len"`
	NewChannels []DeltaChannel `json:"new_channels"`
	Flows       []int          `json:"flows"`
}

// DeltaChannel is a (link, VC) pair in report form.
type DeltaChannel struct {
	Link int `json:"link"`
	VC   int `json:"vc"`
}

// Downtime estimates the reconfiguration's service interruption: a drain
// simulation of the committed design under a witness workload that
// saturates the moved flows, measuring cycles until the last moved
// flow's worm drains. Simulated is false when the caller skipped the
// estimate (Options.SkipSim) or no flow moved.
type Downtime struct {
	Cycles     int64 `json:"cycles"`
	Drained    bool  `json:"drained"`
	Deadlocked bool  `json:"deadlocked"`
	Simulated  bool  `json:"simulated"`
}

// normalize replaces nil slices with empty ones so a Delta marshals
// identically whether it was computed or round-tripped through JSON.
func (d *Delta) normalize() {
	if d.FlowsMoved == nil {
		d.FlowsMoved = []int{}
	}
	if d.LinksRetired == nil {
		d.LinksRetired = []int{}
	}
	if d.Breaks == nil {
		d.Breaks = []DeltaBreak{}
	}
	for i := range d.Breaks {
		if d.Breaks[i].NewChannels == nil {
			d.Breaks[i].NewChannels = []DeltaChannel{}
		}
		if d.Breaks[i].Flows == nil {
			d.Breaks[i].Flows = []int{}
		}
	}
}

// MarshalJSON encodes the delta with normalized (never-null) slices.
func (d *Delta) MarshalJSON() ([]byte, error) {
	d.normalize()
	type plain Delta
	return json.MarshalIndent((*plain)(d), "", "  ")
}

// UnmarshalJSON decodes the schema produced by MarshalJSON.
func (d *Delta) UnmarshalJSON(data []byte) error {
	type plain Delta
	if err := json.Unmarshal(data, (*plain)(d)); err != nil {
		return fmt.Errorf("reconfig: %w: %w", nocerr.ErrInvalidInput, err)
	}
	d.normalize()
	return nil
}

// Write serializes the delta as JSON to w.
func (d *Delta) Write(w io.Writer) error {
	data, err := d.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadDelta parses a delta report from JSON.
func ReadDelta(r io.Reader) (*Delta, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("reconfig: %w", err)
	}
	d := &Delta{}
	if err := d.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return d, nil
}

// deltaBreaks converts replay break records (pseudo-flow reroute IDs)
// into report form with real flow IDs.
func deltaBreaks(breaks []core.BreakRecord, refs []route.PathRef) []DeltaBreak {
	out := make([]DeltaBreak, 0, len(breaks))
	for _, b := range breaks {
		db := DeltaBreak{
			Direction:   b.Direction.String(),
			EdgePos:     b.EdgePos,
			Cost:        b.Cost,
			CycleLen:    len(b.Cycle),
			NewChannels: make([]DeltaChannel, 0, len(b.NewChannels)),
			Flows:       realFlowIDs(b.Reroutes, refs),
		}
		for _, ch := range b.NewChannels {
			db.NewChannels = append(db.NewChannels, DeltaChannel{Link: int(ch.Link), VC: ch.VC})
		}
		out = append(out, db)
	}
	return out
}

// realFlowIDs maps pseudo-flow IDs through refs to deduplicated
// ascending real flow IDs (IDs out of refs range pass through, matching
// core's translation).
func realFlowIDs(pseudo []int, refs []route.PathRef) []int {
	seen := make(map[int]bool, len(pseudo))
	out := make([]int, 0, len(pseudo))
	for _, p := range pseudo {
		f := p
		if p >= 0 && p < len(refs) {
			f = refs[p].FlowID
		}
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Ints(out)
	return out
}

// linkPathCounts tallies candidate paths per physical link.
func linkPathCounts(s *route.RouteSet) map[topology.LinkID]int {
	counts := make(map[topology.LinkID]int)
	for f := 0; f < s.NumFlows(); f++ {
		for _, p := range s.Paths(f) {
			for _, c := range p {
				counts[c.Link]++
			}
		}
	}
	return counts
}
