# Build stage: the module is dependency-free, so the build needs no
# module proxy and works fully offline.
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/nocdr ./cmd/nocdr \
    && CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/nocexp ./cmd/nocexp

# Run stage: a static binary on a minimal base. The entrypoint is the
# job service; override the command for worker mode (see
# docker-compose.yml) or run nocexp for one-shot experiments.
FROM alpine:3.20
RUN adduser -D -u 10001 nocdr
COPY --from=build /out/nocdr /usr/local/bin/nocdr
COPY --from=build /out/nocexp /usr/local/bin/nocexp
USER nocdr
EXPOSE 8080
ENTRYPOINT ["/usr/local/bin/nocdr"]
CMD ["serve", "-addr", "0.0.0.0:8080"]
