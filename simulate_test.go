package nocdr

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// simWorkload is a removed (deadlock-free) 4x4 torus design the
// simulation-API tests run on.
func simWorkload(t *testing.T) (*Topology, *TrafficGraph, *RouteTable) {
	t.Helper()
	top, g, tab := torusWorkload(t)
	res, err := NewSession().RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	return res.Topology, g, res.Routes
}

// TestSimulateIsBatchOfOne pins the PR's wrapper refactor: Simulate must
// stay byte-identical to SimulateBatch with a bare Base spec, and both
// to the pre-batch engine path (NewSimulator + RunContext).
func TestSimulateIsBatchOfOne(t *testing.T) {
	top, g, tab := simWorkload(t)
	cfg := SimConfig{MaxCycles: 3000, LoadFactor: 0.4, Seed: 11, CollectLatencies: true}
	s := NewSession()
	single, err := s.Simulate(context.Background(), top, g, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := s.SimulateBatch(context.Background(), top, g, tab, SimSpec{Base: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Variants) != 1 {
		t.Fatalf("bare spec produced %d variants, want 1", len(bs.Variants))
	}
	if v := bs.Variants[0]; v.Seed != 11 || v.Load != 0.4 {
		t.Errorf("variant tag not normalized to base: %+v", v)
	}
	if !reflect.DeepEqual(single, bs.Variants[0].Stats) {
		t.Errorf("Simulate diverges from batch-of-one:\n%+v\nvs\n%+v", single, bs.Variants[0].Stats)
	}
	sim, err := s.NewSimulator(top, g, tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, direct) {
		t.Errorf("Simulate diverges from the direct engine path:\n%+v\nvs\n%+v", single, direct)
	}
}

// TestSimulateBatchCrossProduct pins variant expansion order (seed-major
// over Seeds × Loads) and per-variant equality with independent
// Simulate calls.
func TestSimulateBatchCrossProduct(t *testing.T) {
	top, g, tab := simWorkload(t)
	base := SimConfig{MaxCycles: 4000, LoadFactor: 0.5, CollectLatencies: true}
	spec := SimSpec{
		Seeds:  []int64{3, 9},
		Loads:  []float64{0.2, 0.8},
		Cycles: 2000, // overrides Base.MaxCycles
		Base:   base,
	}
	s := NewSession(WithParallel(3))
	bs, err := s.SimulateBatch(context.Background(), top, g, tab, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []SimVariant{
		{Seed: 3, Load: 0.2}, {Seed: 3, Load: 0.8},
		{Seed: 9, Load: 0.2}, {Seed: 9, Load: 0.8},
	}
	if len(bs.Variants) != len(want) {
		t.Fatalf("got %d variants, want %d", len(bs.Variants), len(want))
	}
	for i, v := range bs.Variants {
		if v.Seed != want[i].Seed || v.Load != want[i].Load {
			t.Errorf("variant %d = (%d, %v), want (%d, %v)", i, v.Seed, v.Load, want[i].Seed, want[i].Load)
		}
		cfg := base
		cfg.MaxCycles = 2000
		cfg.Seed = v.Seed
		cfg.LoadFactor = v.Load
		oracle, err := NewSession().Simulate(context.Background(), top, g, tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v.Stats, oracle) {
			t.Errorf("variant %d diverges from independent Simulate:\n%+v\nvs\n%+v", i, v.Stats, oracle)
		}
	}
}

// TestSimulateBatchEpochFeed checks that lanes stream EventSimEpoch to
// the Session's progress feed, like Simulate always has.
func TestSimulateBatchEpochFeed(t *testing.T) {
	top, g, tab := simWorkload(t)
	var epochs atomic.Int64
	s := NewSession(WithProgress(func(e Event) {
		if e.Kind == EventSimEpoch {
			epochs.Add(1)
		}
	}))
	_, err := s.SimulateBatch(context.Background(), top, g, tab, SimSpec{
		Seeds: []int64{1, 2},
		Base:  SimConfig{MaxCycles: 3000, LoadFactor: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two lanes, 3000 cycles, DefaultEpochCycles=1000 → 2 lanes × ≥2 epochs.
	if n := epochs.Load(); n < 4 {
		t.Errorf("expected ≥4 epoch events across 2 lanes, got %d", n)
	}
}

// TestSimulateBatchCancel pins the error contract on cancellation.
func TestSimulateBatchCancel(t *testing.T) {
	top, g, tab := simWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NewSession().SimulateBatch(ctx, top, g, tab, SimSpec{
		Seeds: []int64{1, 2},
		Base:  SimConfig{MaxCycles: 1 << 40, LoadFactor: 0.3},
	})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestSimulateBatchRejectsBadSpec covers input validation through the
// public surface.
func TestSimulateBatchRejectsBadSpec(t *testing.T) {
	top, g, tab := simWorkload(t)
	_, err := NewSession().SimulateBatch(context.Background(), top, g, tab, SimSpec{
		Loads: []float64{2.0},
		Base:  SimConfig{MaxCycles: 100},
	})
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("load 2.0: got %v, want ErrInvalidInput", err)
	}
}
