package nocdr

import "github.com/nocdr/nocdr/internal/regular"

// Regular-topology support: the paper's method applies to "any NoC
// topology and routing function", and the classic regular fabrics are the
// easiest way to see both ends of that claim — XY routing on a mesh is
// already deadlock-free (removal is a no-op) while dimension-ordered
// routing on a torus deadlocks through its wrap-around links until the
// algorithm adds its dateline-like VCs.

// Grid is a generated regular topology with its geometry (see Mesh,
// Torus, Ring).
type Grid = regular.Grid

// Mesh builds a cols×rows bidirectional 2D mesh, one core per switch.
func Mesh(cols, rows int) (*Grid, error) {
	g, err := regular.Mesh(cols, rows)
	return g, wrapErr(err)
}

// Torus builds a cols×rows bidirectional 2D torus, one core per switch.
func Torus(cols, rows int) (*Grid, error) {
	g, err := regular.Torus(cols, rows)
	return g, wrapErr(err)
}

// Ring builds an n-switch ring, one core per switch; bidirectional rings
// get opposing link pairs, unidirectional rings are the minimal
// deadlock-prone fabric (the paper's Figure 1).
func Ring(n int, bidirectional bool) (*Grid, error) {
	g, err := regular.Ring(n, bidirectional)
	return g, wrapErr(err)
}

// DORRoutes computes dimension-ordered (XY) routes on a generated grid:
// deadlock-free on meshes, deadlock-prone across torus wrap links.
func DORRoutes(g *Grid, tg *TrafficGraph) (*RouteTable, error) {
	tab, err := regular.DORRoutes(g, tg)
	return tab, wrapErr(err)
}

// UniformTraffic builds the stride-permutation workload (core i sends to
// core i+stride mod n) used to exercise ring and torus datelines.
func UniformTraffic(n, stride int, bandwidth float64) (*TrafficGraph, error) {
	g, err := regular.UniformTraffic(n, stride, bandwidth)
	return g, wrapErr(err)
}
