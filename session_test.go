package nocdr

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// torusWorkload builds the 4x4 torus with stride-8 uniform traffic and
// DOR routes — a design whose dateline cycles take four breaks to
// remove, giving the cancellation and event tests room to interrupt.
func torusWorkload(t *testing.T) (*Topology, *TrafficGraph, *RouteTable) {
	t.Helper()
	grid, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := UniformTraffic(16, 8, 100)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := DORRoutes(grid, g)
	if err != nil {
		t.Fatal(err)
	}
	return grid.Topology, g, tab
}

// TestSessionDifferentialRemoval pins that the deprecated free function
// and the Session path produce byte-identical results — same break
// sequences, same modified topology and routes — across policies and
// both CDG maintenance paths.
func TestSessionDifferentialRemoval(t *testing.T) {
	top, _, tab := torusWorkload(t)
	for _, tc := range []struct {
		name string
		opts RemovalOptions
		sess *Session
	}{
		{"default", RemovalOptions{}, NewSession()},
		{"first-found", RemovalOptions{Selection: FirstFound}, NewSession(WithSelection(FirstFound))},
		{"forward-only", RemovalOptions{Policy: ForwardOnly}, NewSession(WithPolicy(ForwardOnly))},
		{"full-rebuild", RemovalOptions{FullRebuild: true}, NewSession(WithFullRebuild(true))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old, err := RemoveDeadlocks(top, tab, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			neu, err := tc.sess.RemoveDeadlocks(context.Background(), top, tab)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(old.Breaks, neu.Breaks) {
				t.Fatalf("break sequences differ:\nold: %+v\nnew: %+v", old.Breaks, neu.Breaks)
			}
			if old.AddedVCs != neu.AddedVCs || old.Iterations != neu.Iterations {
				t.Fatalf("outcome differs: old vcs=%d iters=%d, new vcs=%d iters=%d",
					old.AddedVCs, old.Iterations, neu.AddedVCs, neu.Iterations)
			}
			oldTopo, newTopo := encodeJSON(t, old.Topology), encodeJSON(t, neu.Topology)
			if !bytes.Equal(oldTopo, newTopo) {
				t.Fatal("modified topologies serialize differently")
			}
			oldRoutes, newRoutes := encodeJSON(t, old.Routes), encodeJSON(t, neu.Routes)
			if !bytes.Equal(oldRoutes, newRoutes) {
				t.Fatal("modified routes serialize differently")
			}
		})
	}
}

// encodeJSON serializes an artifact through its Write method for byte
// comparison.
func encodeJSON(t *testing.T, v interface{ Write(w io.Writer) error }) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := v.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSessionDifferentialSweep pins that the deprecated-path sweep (the
// runner used directly, as `nocexp sweep` did pre-Session) and
// Session.Sweep serialize to byte-identical JSON, at any worker count.
func TestSessionDifferentialSweep(t *testing.T) {
	grid := SweepGrid{Benchmarks: []string{"D26_media", "D36_8"}, SwitchCounts: []int{8, 10}}
	serial, err := NewSession().Sweep(context.Background(), grid, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewSession(WithParallel(8)).Sweep(context.Background(), grid, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serial and parallel Session sweeps serialize differently")
	}
}

// TestSessionCancelMidRemoval cancels from inside the progress feed
// after the first cycle break: the removal must stop promptly with an
// error that satisfies both ErrCanceled and context.Canceled, and
// return no partial result.
func TestSessionCancelMidRemoval(t *testing.T) {
	top, _, tab := torusWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	breaks := 0
	s := NewSession(WithProgress(func(e Event) {
		if e.Kind == EventCycleBroken {
			breaks++
			cancel()
		}
	}))
	res, err := s.RemoveDeadlocks(ctx, top, tab)
	if res != nil {
		t.Fatal("canceled removal returned a partial result")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if breaks != 1 {
		t.Fatalf("removal kept breaking after cancellation: %d breaks", breaks)
	}
}

// TestSessionCancelMidSimulation cancels a multi-billion-cycle
// simulation shortly after it starts; the flit-stepping loop must notice
// within its polling interval and return promptly.
func TestSessionCancelMidSimulation(t *testing.T) {
	top, g, tab := torusWorkload(t)
	// Remove deadlocks first so the run cannot end early on its own.
	res, err := NewSession().RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		st  *SimStats
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		st, err := NewSession().Simulate(ctx, res.Topology, g, res.Routes, SimConfig{
			MaxCycles:  4_000_000_000,
			LoadFactor: 0.5,
		})
		done <- outcome{st, err}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case out := <-done:
		if out.st != nil {
			t.Fatal("canceled simulation returned stats")
		}
		if !errors.Is(out.err, ErrCanceled) || !errors.Is(out.err, context.Canceled) {
			t.Fatalf("error %v does not wrap ErrCanceled/context.Canceled", out.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("simulation did not return within 10s of cancellation")
	}
}

// TestSessionVCLimit pins the WithVCLimit budget: a limit below the
// workload's need fails with ErrVCLimit, a sufficient one matches the
// unlimited outcome exactly.
func TestSessionVCLimit(t *testing.T) {
	top, _, tab := torusWorkload(t)
	unlimited, err := NewSession().RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.AddedVCs < 2 {
		t.Fatalf("workload adds %d VCs; need >= 2 for a meaningful limit test", unlimited.AddedVCs)
	}
	if _, err := NewSession(WithVCLimit(unlimited.AddedVCs-1)).RemoveDeadlocks(context.Background(), top, tab); !errors.Is(err, ErrVCLimit) {
		t.Fatalf("limit %d: error %v does not wrap ErrVCLimit", unlimited.AddedVCs-1, err)
	}
	capped, err := NewSession(WithVCLimit(unlimited.AddedVCs)).RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if capped.AddedVCs != unlimited.AddedVCs {
		t.Fatalf("sufficient limit changed the outcome: %d vs %d VCs", capped.AddedVCs, unlimited.AddedVCs)
	}
}

// TestSessionEventFeed checks the removal feed's shape: one cycle_broken
// per iteration, one vc_added per provisioned channel, and totals that
// reconcile with the result.
func TestSessionEventFeed(t *testing.T) {
	top, _, tab := torusWorkload(t)
	var broken, added int
	var lastIter int
	s := NewSession(WithProgress(func(e Event) {
		switch e.Kind {
		case EventCycleBroken:
			broken++
			if e.Iteration != lastIter+1 {
				t.Errorf("cycle_broken iteration %d after %d", e.Iteration, lastIter)
			}
			lastIter = e.Iteration
			if e.Break == nil || len(e.Break.Cycle) == 0 {
				t.Error("cycle_broken event without break record")
			}
		case EventVCAdded:
			added++
			if e.Iteration != lastIter {
				t.Errorf("vc_added iteration %d outside break %d", e.Iteration, lastIter)
			}
		}
	}))
	res, err := s.RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	if broken != res.Iterations {
		t.Fatalf("%d cycle_broken events, %d iterations", broken, res.Iterations)
	}
	if added != res.AddedVCs {
		t.Fatalf("%d vc_added events, %d added VCs", added, res.AddedVCs)
	}
}

// TestSessionSimEpochEvents checks that a progress-carrying Session
// emits periodic epoch snapshots with monotone cycles.
func TestSessionSimEpochEvents(t *testing.T) {
	top, g, tab := torusWorkload(t)
	res, err := NewSession().RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		t.Fatal(err)
	}
	var epochs []int64
	s := NewSession(WithProgress(func(e Event) {
		if e.Kind == EventSimEpoch {
			epochs = append(epochs, e.Epoch.Cycle)
		}
	}))
	if _, err := s.Simulate(context.Background(), res.Topology, g, res.Routes, SimConfig{
		MaxCycles:   5000,
		LoadFactor:  0.3,
		EpochCycles: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	if len(epochs) < 4 {
		t.Fatalf("expected >= 4 epoch events over 5000 cycles at period 1000, got %d", len(epochs))
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epoch cycles not monotone: %v", epochs)
		}
	}
}

// TestSentinelErrors pins the errors.Is surface of the public API.
func TestSentinelErrors(t *testing.T) {
	if _, err := Benchmark("no_such_benchmark"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown benchmark error %v does not wrap ErrNotFound", err)
	}
	if _, err := ReadTopology(bytes.NewReader([]byte("{not json"))); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("malformed topology error %v does not wrap ErrInvalidInput", err)
	}
	if _, err := NewSession().Synthesize(context.Background(), NewTraffic("empty"), SynthOptions{SwitchCount: 0}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("bad synth options error %v does not wrap ErrInvalidInput", err)
	}
	// MaxIterations exhaustion surfaces the cyclic-CDG sentinel.
	top, _, tab := torusWorkload(t)
	if _, err := NewSession(WithMaxIterations(1)).RemoveDeadlocks(context.Background(), top, tab); !errors.Is(err, ErrCyclicCDG) {
		t.Fatalf("iteration-capped removal error %v does not wrap ErrCyclicCDG", err)
	}
}

// TestDeprecatedWrappersStillWork exercises every deprecated free
// function once against its Session equivalent on a benchmark design.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	g, err := Benchmark("D36_8")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession()
	ctx := context.Background()

	oldD, err := Synthesize(g, SynthOptions{SwitchCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	newD, err := s.Synthesize(ctx, g, SynthOptions{SwitchCount: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeJSON(t, oldD.Topology), encodeJSON(t, newD.Topology)) {
		t.Fatal("Synthesize differs between old and new API")
	}

	oldTab, err := ComputeRoutes(oldD.Topology, g)
	if err != nil {
		t.Fatal(err)
	}
	newTab, err := s.ComputeRoutes(newD.Topology, g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeJSON(t, oldTab), encodeJSON(t, newTab)) {
		t.Fatal("ComputeRoutes differs between old and new API")
	}

	oldFree, err := DeadlockFree(oldD.Topology, oldD.Routes)
	if err != nil {
		t.Fatal(err)
	}
	newFree, err := s.DeadlockFree(newD.Topology, newD.Routes)
	if err != nil {
		t.Fatal(err)
	}
	if oldFree != newFree {
		t.Fatal("DeadlockFree differs between old and new API")
	}

	oldCDG, err := BuildCDG(oldD.Topology, oldD.Routes)
	if err != nil {
		t.Fatal(err)
	}
	newCDG, err := s.BuildCDG(newD.Topology, newD.Routes)
	if err != nil {
		t.Fatal(err)
	}
	if oldCDG.NumDependencies() != newCDG.NumDependencies() {
		t.Fatal("BuildCDG differs between old and new API")
	}

	oldOrd, err := ApplyResourceOrdering(oldD.Topology, oldD.Routes, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	newOrd, err := s.ApplyResourceOrdering(newD.Topology, newD.Routes, HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	if oldOrd.AddedVCs != newOrd.AddedVCs {
		t.Fatal("ApplyResourceOrdering differs between old and new API")
	}

	rm, err := RemoveDeadlocks(oldD.Topology, oldD.Routes, RemovalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycleless := rm.Topology
	oldStats, err := Simulate(cycleless, g, rm.Routes, SimConfig{MaxCycles: 2000, LoadFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	newStats, err := s.Simulate(ctx, cycleless, g, rm.Routes, SimConfig{MaxCycles: 2000, LoadFactor: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if oldStats.DeliveredPackets != newStats.DeliveredPackets || oldStats.Cycles != newStats.Cycles {
		t.Fatal("Simulate differs between old and new API")
	}

	if len(rm.Breaks) > 0 {
		cyc := rm.Breaks[0].Cycle
		oldCT, err := ForwardCostTable(cyc, oldD.Routes)
		if err != nil {
			t.Fatal(err)
		}
		newCT, err := s.CostTable(Forward, cyc, newD.Routes)
		if err != nil {
			t.Fatal(err)
		}
		if oldCT.BestCost != newCT.BestCost || oldCT.BestEdge != newCT.BestEdge {
			t.Fatal("cost tables differ between old and new API")
		}
	}
}

// TestSessionSweepHonorsSessionOptions pins that Sweep plumbs the
// Session's VC limit and direction policy into every cell (a budget too
// small must surface as per-cell errors), and that an empty grid
// Policies axis inherits the Session's WithSelection.
func TestSessionSweepHonorsSessionOptions(t *testing.T) {
	grid := SweepGrid{Benchmarks: []string{"D36_8"}, SwitchCounts: []int{14}}
	rep, err := NewSession(WithVCLimit(1)).Sweep(context.Background(), grid, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := rep.Results[0].Error; !strings.Contains(e, "VC limit") {
		t.Fatalf("cell with 1-VC budget should fail with the VC-limit error, got %q", e)
	}

	rep, err = NewSession(WithSelection(FirstFound)).Sweep(context.Background(), grid, SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := rep.Grid.Policies[0]; p != "first" {
		t.Fatalf("empty Policies axis resolved to %q, want the Session's \"first\"", p)
	}
}

// TestErrorPrefixExactlyOnce pins wrapErr's contract: one "nocdr: "
// prefix, even when a sentinel sits mid-chain.
func TestErrorPrefixExactlyOnce(t *testing.T) {
	for name, err := range map[string]error{
		"malformed topology": func() error {
			_, err := ReadTopology(strings.NewReader(`{"name":"x","switches":[{"id":7}],"links":[]}`))
			return err
		}(),
		"unknown benchmark": func() error {
			_, err := Benchmark("nope")
			return err
		}(),
		"bad synth options": func() error {
			_, err := NewSession().Synthesize(context.Background(), NewTraffic("e"), SynthOptions{})
			return err
		}(),
	} {
		if err == nil {
			t.Fatalf("%s: expected an error", name)
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "nocdr: ") {
			t.Fatalf("%s: %q lacks the nocdr: prefix", name, msg)
		}
		if strings.Count(msg, "nocdr: ") != 1 {
			t.Fatalf("%s: %q carries the nocdr: prefix more than once", name, msg)
		}
	}
}
