module github.com/nocdr/nocdr

go 1.22
