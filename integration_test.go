package nocdr_test

// End-to-end integration properties across the whole public API: random
// workloads are synthesized, analyzed, repaired by both methods, priced,
// and simulated, cross-validating the static CDG analysis against the
// dynamic wormhole behaviour.

import (
	"context"
	"math/rand"
	"testing"

	nocdr "github.com/nocdr/nocdr"
)

// randomWorkload builds a random communication graph sized for quick
// integration runs.
func randomWorkload(seed int64) *nocdr.TrafficGraph {
	rng := rand.New(rand.NewSource(seed))
	n := 8 + rng.Intn(12)
	g := nocdr.NewTraffic("itest")
	for i := 0; i < n; i++ {
		g.AddCore("")
	}
	flows := 2*n + rng.Intn(2*n)
	for i := 0; i < flows; i++ {
		a := nocdr.CoreID(rng.Intn(n))
		b := nocdr.CoreID(rng.Intn(n))
		if a != b {
			g.MustAddFlow(a, b, float64(1+rng.Intn(200)))
		}
	}
	return g
}

// TestPipelineEndToEnd drives synthesize → analyze → repair → price →
// simulate for a set of random workloads and checks the invariants that
// tie the layers together.
func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	params := nocdr.DefaultPowerParams()
	for seed := int64(1); seed <= 8; seed++ {
		g := randomWorkload(seed)
		switches := 3 + int(seed)%6
		design, err := nocdr.NewSession().Synthesize(context.Background(), g, nocdr.SynthOptions{SwitchCount: switches})
		if err != nil {
			t.Fatalf("seed %d: synth: %v", seed, err)
		}

		res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), design.Topology, design.Routes)
		if err != nil {
			t.Fatalf("seed %d: remove: %v", seed, err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("seed %d: verify: %v", seed, err)
		}
		if err := res.Routes.Validate(res.Topology, g); err != nil {
			t.Fatalf("seed %d: routes: %v", seed, err)
		}

		// Static/dynamic cross-validation: the repaired design must never
		// deadlock at saturation with tight buffers.
		st, err := nocdr.NewSession().Simulate(context.Background(), res.Topology, g, res.Routes, nocdr.SimConfig{
			MaxCycles:   15000,
			LoadFactor:  1.0,
			BufferDepth: 2,
			Seed:        seed,
		})
		if err != nil {
			t.Fatalf("seed %d: simulate: %v", seed, err)
		}
		if st.Deadlocked {
			t.Fatalf("seed %d: repaired design deadlocked at cycle %d",
				seed, st.DeadlockCycle)
		}

		// Pricing sanity: removal never costs more than resource ordering
		// under either hardware realization.
		ro, err := nocdr.NewSession().ApplyResourceOrdering(design.Topology, design.Routes, nocdr.HopIndex)
		if err != nil {
			t.Fatalf("seed %d: ordering: %v", seed, err)
		}
		rmArea := nocdr.EstimateArea(params, res.Topology).TotalUM2
		roArea := nocdr.EstimateArea(params, ro.UniformTopology()).TotalUM2
		if rmArea > roArea {
			t.Errorf("seed %d: removal area %.0f above ordering %.0f", seed, rmArea, roArea)
		}
		physArea := nocdr.EstimateAreaPhysical(params, res.Topology).TotalUM2
		if physArea < rmArea {
			t.Errorf("seed %d: physical realization cheaper than VC realization", seed)
		}
	}
}

// TestAcyclicNeverDeadlocks cross-validates the theory the whole paper
// rests on (Dally & Towles): designs whose CDG is acyclic never deadlock
// in simulation, at any load, with any buffer depth.
func TestAcyclicNeverDeadlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	for seed := int64(20); seed < 28; seed++ {
		g := randomWorkload(seed)
		design, err := nocdr.NewSession().Synthesize(context.Background(), g, nocdr.SynthOptions{SwitchCount: 4 + int(seed)%5})
		if err != nil {
			t.Fatal(err)
		}
		free, err := nocdr.NewSession().DeadlockFree(design.Topology, design.Routes)
		if err != nil {
			t.Fatal(err)
		}
		if !free {
			// Make it acyclic first; then the invariant must hold.
			res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), design.Topology, design.Routes)
			if err != nil {
				t.Fatal(err)
			}
			design.Topology, design.Routes = res.Topology, res.Routes
		}
		for _, depth := range []int{1, 2, 8} {
			st, err := nocdr.NewSession().Simulate(context.Background(), design.Topology, g, design.Routes, nocdr.SimConfig{
				MaxCycles:   8000,
				LoadFactor:  1.0,
				BufferDepth: depth,
				Seed:        seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Deadlocked {
				t.Fatalf("seed %d depth %d: acyclic CDG deadlocked — theory violated",
					seed, depth)
			}
		}
	}
}

// TestRemovalMatchesOrderingSafety checks that both methods produce
// genuinely deadlock-free designs under identical saturated workloads.
func TestRemovalMatchesOrderingSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	g := randomWorkload(99)
	design, err := nocdr.NewSession().Synthesize(context.Background(), g, nocdr.SynthOptions{SwitchCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), design.Topology, design.Routes)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := nocdr.NewSession().ApplyResourceOrdering(design.Topology, design.Routes, nocdr.HopIndex)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nocdr.SimConfig{MaxCycles: 15000, LoadFactor: 1.0, BufferDepth: 2, Seed: 11}
	for name, pair := range map[string]struct {
		top *nocdr.Topology
		tab *nocdr.RouteTable
	}{
		"removal":  {rm.Topology, rm.Routes},
		"ordering": {ro.Topology, ro.Routes},
	} {
		st, err := nocdr.NewSession().Simulate(context.Background(), pair.top, g, pair.tab, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Deadlocked {
			t.Errorf("%s design deadlocked", name)
		}
		if st.DeliveredPackets == 0 {
			t.Errorf("%s design delivered nothing", name)
		}
	}
}
