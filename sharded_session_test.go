package nocdr_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	nocdr "github.com/nocdr/nocdr"
	"github.com/nocdr/nocdr/internal/serve"
)

// TestSessionWithWorkersMatchesLocal pins the Session face of the
// sharded backend: a Sweep dispatched over a local worker cluster must
// produce the same bytes as the in-process run, and the progress feed
// must carry the shard-assignment and per-cell events.
func TestSessionWithWorkersMatchesLocal(t *testing.T) {
	urls, shutdown, err := serve.LocalCluster(2, serve.Options{Workers: 2, SweepParallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	grid := nocdr.SweepGrid{
		Benchmarks: []string{"mesh:4"},
		Routings:   []string{"west-first", "odd-even"},
		Seeds:      []int64{0, 1},
	}
	ctx := context.Background()
	local, err := nocdr.NewSession(nocdr.WithParallel(4)).Sweep(ctx, grid, nocdr.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	counts := map[nocdr.EventKind]int{}
	sess := nocdr.NewSession(
		nocdr.WithWorkers(urls...),
		nocdr.WithProgress(func(e nocdr.Event) {
			mu.Lock()
			counts[e.Kind]++
			mu.Unlock()
		}),
	)
	remote, err := sess.Sweep(ctx, grid, nocdr.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := local.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := remote.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("WithWorkers sweep differs from local:\nlocal:\n%s\nworkers:\n%s", a.String(), b.String())
	}
	mu.Lock()
	defer mu.Unlock()
	if counts[nocdr.EventShardAssigned] == 0 {
		t.Error("no shard_assigned events on the progress feed")
	}
	if got := counts[nocdr.EventSweepCell]; got != len(remote.Results) {
		t.Errorf("sweep_cell events %d, want one per cell (%d)", got, len(remote.Results))
	}

	// A shard filter cannot ride along with WithWorkers.
	if _, err := sess.Sweep(ctx, grid, nocdr.SweepOptions{ShardCount: 2}); err == nil {
		t.Error("WithWorkers accepted a nested shard filter")
	}
}
