// Package nocdr removes routing deadlocks from wormhole flow-controlled
// Networks-on-Chip with custom topologies and static routes, implementing
// Seiculescu, Murali, Benini and De Micheli, "A Method to Remove Deadlocks
// in Networks-on-Chips with Wormhole Flow Control" (DATE 2010).
//
// Given a topology graph TG(S,L), a communication graph G(V,E) and one
// fixed route per flow, the library builds the channel dependency graph
// (CDG), and while the CDG is cyclic it breaks the smallest cycle at the
// cheapest dependency — duplicating the minimum chain of channel vertices
// as new virtual channels and rerouting the responsible flows onto them.
// An acyclic CDG makes the network provably deadlock-free under wormhole
// flow control (Dally & Towles).
//
// The package also ships everything the paper's evaluation needs: an
// application-specific topology synthesizer, the resource-ordering
// baseline, ORION-style power and area models, reconstructions of the six
// SoC benchmarks, and a flit-level wormhole simulator that demonstrates
// deadlocks before removal and their absence afterwards.
//
// Quick start — the context-first Session pipeline API:
//
//	s := nocdr.NewSession()
//	g, _ := nocdr.Benchmark("D26_media")
//	design, _ := s.Synthesize(ctx, g, nocdr.SynthOptions{SwitchCount: 14})
//	result, _ := s.RemoveDeadlocks(ctx, design.Topology, design.Routes)
//	fmt.Println("added VCs:", result.AddedVCs)
//
// Session methods accept a context.Context, stream progress Events (see
// WithProgress), respect budgets (WithVCLimit), and fail with typed
// sentinel errors (ErrCyclicCDG, ErrVCLimit, ErrCanceled) that support
// errors.Is/As. The pre-Session free functions below remain as thin
// deprecated wrappers; see MIGRATION.md for the one-to-one mapping.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package nocdr

import (
	"context"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/power"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// Topology construction (the paper's Definition 1).
type (
	// Topology is the topology graph TG(S,L): switches joined by
	// unidirectional physical links, each carrying >= 1 virtual channels.
	Topology = topology.Topology
	// SwitchID identifies a switch.
	SwitchID = topology.SwitchID
	// LinkID identifies a physical link.
	LinkID = topology.LinkID
	// Channel is one virtual channel of one physical link — the resource
	// unit of the whole method (Definitions 3–4).
	Channel = topology.Channel
	// Switch is a vertex of the topology graph.
	Switch = topology.Switch
	// Link is a unidirectional physical link.
	Link = topology.Link
)

// Traffic modelling (the paper's Definition 2).
type (
	// TrafficGraph is the communication graph G(V,E).
	TrafficGraph = traffic.Graph
	// CoreID identifies an application core.
	CoreID = traffic.CoreID
	// Flow is one directed communication between cores.
	Flow = traffic.Flow
)

// Routing (the paper's Definition 3).
type (
	// RouteTable maps each flow to its ordered channel list.
	RouteTable = route.Table
	// Route is one flow's channel sequence.
	Route = route.Route
)

// Deadlock analysis and removal (the paper's contribution).
type (
	// CDG is the channel dependency graph (Definition 4).
	CDG = cdg.CDG
	// RemovalOptions configures the removal algorithm; the zero value is
	// the paper's configuration.
	RemovalOptions = core.Options
	// RemovalResult reports the removal outcome: modified topology and
	// routes, added VCs, and a log of every cycle break.
	RemovalResult = core.Result
	// BreakRecord documents one executed cycle break.
	BreakRecord = core.BreakRecord
	// CostTable is Algorithm 2's cost matrix (the paper's Table 1).
	CostTable = core.CostTable
	// Direction is a break direction (forward/backward, Figures 5–6).
	Direction = core.Direction
	// DirectionPolicy selects how Algorithm 1 chooses between the
	// forward and backward break (see WithPolicy).
	DirectionPolicy = core.DirectionPolicy
	// CycleSelection selects which CDG cycle Algorithm 1 attacks next
	// (see WithSelection).
	CycleSelection = core.CycleSelection
)

// Re-exported removal constants.
const (
	Forward  = core.Forward
	Backward = core.Backward

	// BestOfBoth compares forward and backward break costs and takes
	// the cheaper (the paper's policy); ForwardOnly/BackwardOnly exist
	// for ablations.
	BestOfBoth   = core.BestOfBoth
	ForwardOnly  = core.ForwardOnly
	BackwardOnly = core.BackwardOnly

	// SmallestFirst breaks the shortest CDG cycle first (the paper's
	// heuristic); FirstFound breaks an arbitrary deterministic cycle.
	SmallestFirst = core.SmallestFirst
	FirstFound    = core.FirstFound
)

// Baselines and models.
type (
	// OrderingScheme selects the resource-ordering class assignment.
	OrderingScheme = ordering.Scheme
	// OrderingResult reports the resource-ordering outcome.
	OrderingResult = ordering.Result
	// SynthOptions configures topology synthesis.
	SynthOptions = synth.Options
	// Design couples a synthesized topology with its routes.
	Design = synth.Result
	// PowerParams parameterizes the ORION-style power/area model.
	PowerParams = power.Params
	// PowerReport breaks NoC power into dynamic and leakage parts (mW).
	PowerReport = power.PowerReport
	// AreaReport breaks NoC area into per-switch contributions (µm²).
	AreaReport = power.AreaReport
)

// Re-exported resource-ordering schemes. HopIndex is the paper's
// baseline; the greedy variants are stronger and exist for ablations.
const (
	HopIndex   = ordering.HopIndex
	GreedyBFS  = ordering.GreedyBFS
	GreedyByID = ordering.GreedyByID
)

// Simulation.
type (
	// SimConfig parameterizes the wormhole simulator.
	SimConfig = wormhole.Config
	// SimStats is a simulation outcome, including deadlock reports.
	SimStats = wormhole.Stats
	// Simulator is the flit-level wormhole NoC simulator.
	Simulator = wormhole.Simulator
)

// NewTopology returns an empty named topology.
func NewTopology(name string) *Topology { return topology.New(name) }

// NewTraffic returns an empty named communication graph.
func NewTraffic(name string) *TrafficGraph { return traffic.NewGraph(name) }

// NewRouteTable returns a route table sized for n flows.
func NewRouteTable(n int) *RouteTable { return route.NewTable(n) }

// Chan constructs a Channel from a link and VC index.
func Chan(link LinkID, vc int) Channel { return topology.Chan(link, vc) }

// Benchmark returns one of the paper's SoC benchmarks by name; an
// unknown name fails with ErrNotFound. See BenchmarkNames.
func Benchmark(name string) (*TrafficGraph, error) {
	g, err := traffic.ByName(name)
	return g, wrapErr(err)
}

// BenchmarkNames lists the shipped benchmarks in the paper's Figure 10
// order: D26_media, D36_4, D36_6, D36_8, D35_bot, D38_tvo.
func BenchmarkNames() []string { return traffic.BenchmarkNames() }

// sessionFromRemovalOptions builds the Session equivalent of a legacy
// RemovalOptions value, so the deprecated wrappers stay byte-identical
// to the Session path (pinned by the differential tests).
func sessionFromRemovalOptions(opts RemovalOptions) *Session {
	return &Session{
		vcLimit:       opts.VCLimit,
		maxIterations: opts.MaxIterations,
		policy:        opts.Policy,
		selection:     opts.Selection,
		fullRebuild:   opts.FullRebuild,
		parallel:      1,
		onBreak:       opts.OnBreak,
	}
}

// Synthesize builds an application-specific topology and routes for a
// communication graph (substitute for the paper's reference [9]).
//
// Deprecated: use NewSession and (*Session).Synthesize, which accepts a
// context.Context.
func Synthesize(g *TrafficGraph, opts SynthOptions) (*Design, error) {
	return NewSession().Synthesize(context.Background(), g, opts)
}

// ComputeRoutes derives deterministic load-aware shortest-path routes for
// every flow on an existing topology with attached cores.
//
// Deprecated: use NewSession and (*Session).ComputeRoutes.
func ComputeRoutes(top *Topology, g *TrafficGraph) (*RouteTable, error) {
	return NewSession().ComputeRoutes(top, g)
}

// BuildCDG constructs the channel dependency graph for a routed topology.
//
// Deprecated: use NewSession and (*Session).BuildCDG.
func BuildCDG(top *Topology, tab *RouteTable) (*CDG, error) {
	return NewSession().BuildCDG(top, tab)
}

// DeadlockFree reports whether the routed topology's CDG is acyclic.
//
// Deprecated: use NewSession and (*Session).DeadlockFree.
func DeadlockFree(top *Topology, tab *RouteTable) (bool, error) {
	return NewSession().DeadlockFree(top, tab)
}

// RemoveDeadlocks runs the paper's Algorithm 1: it returns modified
// copies of the topology and routes whose CDG is acyclic, adding the
// minimum virtual channels its cost heuristic finds. Inputs are never
// mutated.
//
// Deprecated: use NewSession (WithPolicy, WithSelection, WithVCLimit,
// WithFullRebuild, WithMaxIterations) and (*Session).RemoveDeadlocks,
// which accepts a context.Context and streams progress events.
func RemoveDeadlocks(top *Topology, tab *RouteTable, opts RemovalOptions) (*RemovalResult, error) {
	return sessionFromRemovalOptions(opts).RemoveDeadlocks(context.Background(), top, tab)
}

// ForwardCostTable computes Algorithm 2's forward cost table for a cycle
// (the paper's Table 1); useful for inspecting why a break was chosen.
//
// Deprecated: use NewSession and (*Session).CostTable with Forward.
func ForwardCostTable(cycle []Channel, tab *RouteTable) (*CostTable, error) {
	return NewSession().CostTable(Forward, cycle, tab)
}

// BackwardCostTable is ForwardCostTable's mirror (Algorithm 1 step 6).
//
// Deprecated: use NewSession and (*Session).CostTable with Backward.
func BackwardCostTable(cycle []Channel, tab *RouteTable) (*CostTable, error) {
	return NewSession().CostTable(Backward, cycle, tab)
}

// ApplyResourceOrdering runs the paper's comparison baseline on the same
// inputs RemoveDeadlocks takes.
//
// Deprecated: use NewSession and (*Session).ApplyResourceOrdering.
func ApplyResourceOrdering(top *Topology, tab *RouteTable, scheme OrderingScheme) (*OrderingResult, error) {
	return NewSession().ApplyResourceOrdering(top, tab, scheme)
}

// DefaultPowerParams returns the 65 nm-class model parameters used by the
// paper-reproduction experiments.
func DefaultPowerParams() PowerParams { return power.DefaultParams() }

// EstimatePower evaluates total NoC power (mW) for a routed workload.
func EstimatePower(p PowerParams, top *Topology, g *TrafficGraph, tab *RouteTable) (PowerReport, error) {
	return power.NoCPower(p, top, g, tab)
}

// EstimateArea evaluates total switch area (µm²) for a topology.
func EstimateArea(p PowerParams, top *Topology) AreaReport {
	return power.NoCArea(p, top)
}

// EstimatePowerPhysical prices the topology for a VC-less architecture
// where every extra channel is a parallel physical link — the paper's
// alternative realization ("it is also possible to add physical channels
// if the NoC architecture does not support VCs").
func EstimatePowerPhysical(p PowerParams, top *Topology, g *TrafficGraph, tab *RouteTable) (PowerReport, error) {
	return power.NoCPowerPhysical(p, top, g, tab)
}

// EstimateAreaPhysical is EstimateArea under the physical-channel
// realization.
func EstimateAreaPhysical(p PowerParams, top *Topology) AreaReport {
	return power.NoCAreaPhysical(p, top)
}

// NewSimulator builds a flit-level wormhole simulator for a routed
// workload.
//
// Deprecated: use NewSession and (*Session).NewSimulator.
func NewSimulator(top *Topology, g *TrafficGraph, tab *RouteTable, cfg SimConfig) (*Simulator, error) {
	return NewSession().NewSimulator(top, g, tab, cfg)
}

// Simulate is the one-shot convenience: build a simulator and run it.
//
// Deprecated: use NewSession and (*Session).Simulate, which accepts a
// context.Context and streams epoch progress events.
func Simulate(top *Topology, g *TrafficGraph, tab *RouteTable, cfg SimConfig) (*SimStats, error) {
	return NewSession().Simulate(context.Background(), top, g, tab, cfg)
}
