package nocdr

import (
	"fmt"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// EventKind discriminates the entries of a Session's progress feed.
type EventKind int

const (
	// EventCycleBroken fires after every executed Algorithm 1 cycle
	// break; Event.Break carries the full record.
	EventCycleBroken EventKind = iota + 1
	// EventVCAdded fires once per virtual channel the removal provisions
	// (a break adding k channels emits k of these after its
	// EventCycleBroken); Event.Channel names the new channel.
	EventVCAdded
	// EventSweepCell fires when one sweep grid cell completes;
	// Event.Cell carries its result, Event.CellIndex/CellTotal its slot.
	EventSweepCell
	// EventSimEpoch fires every SimConfig.EpochCycles simulated cycles
	// of a Session simulation; Event.Epoch carries the snapshot.
	EventSimEpoch
	// EventShardAssigned fires when a sharded sweep (WithWorkers) hands a
	// shard to a worker, including reassignments after a failure;
	// Event.Shard/ShardTotal name the shard, Event.Worker the URL.
	EventShardAssigned
	// EventWorkerRetry fires when a sharded sweep requeues a shard after
	// a worker failure; Event.Shard and Event.Worker identify the failed
	// attempt, Event.WorkerErr carries the failure.
	EventWorkerRetry
	// EventReconfigStage fires on every state transition of an online
	// reconfiguration (rerouting → replaying → simulating →
	// committed, or rolled_back); Event.Stage names the stage and
	// Event.Fault the link being retired. Replay cycle breaks arrive as
	// ordinary EventCycleBroken/EventVCAdded events between the
	// rerouting and simulating stages.
	EventReconfigStage
	// EventReconfigDelta fires once per committed fault event;
	// Event.Delta carries the full report.
	EventReconfigDelta
)

// String names the kind for logs ("cycle_broken", "vc_added", ...).
func (k EventKind) String() string {
	switch k {
	case EventCycleBroken:
		return "cycle_broken"
	case EventVCAdded:
		return "vc_added"
	case EventSweepCell:
		return "sweep_cell"
	case EventSimEpoch:
		return "sim_epoch"
	case EventShardAssigned:
		return "shard_assigned"
	case EventWorkerRetry:
		return "worker_retry"
	case EventReconfigStage:
		return "reconfig_stage"
	case EventReconfigDelta:
		return "reconfig_delta"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// SimEpoch is one periodic progress snapshot of a running simulation.
type SimEpoch = wormhole.EpochStats

// Sweep surface, re-exported from the concurrent experiment engine.
type (
	// SweepGrid spans a sweep's (benchmark × switches × policy × seed)
	// job space; the zero value is the paper's default grid.
	SweepGrid = runner.Grid
	// SweepJob is one point of the grid.
	SweepJob = runner.Job
	// SweepResult is one evaluated grid cell.
	SweepResult = runner.Result
	// SweepReport is a completed (possibly canceled-partial) sweep.
	SweepReport = runner.Report
	// SimParams parameterizes a sweep's flit-level verification stage.
	SimParams = runner.SimParams
	// ResultCache is the content-addressed sweep result cache contract
	// (see WithResultCache): Get returns the cached canonical JSON
	// encoding of a cell result, Put stores one. The fabric package's
	// two-tier cache implements it.
	ResultCache = runner.CellCache
	// WorkerSource supplies live worker membership to a distributed
	// sweep (see WithWorkerSource): a snapshot accessor plus a change
	// signal, letting workers that join mid-run pick up unowned shards.
	WorkerSource = runner.WorkerSource
)

// SweepOptions configures Session.Sweep beyond what the Session already
// carries (worker count, removal policy, rebuild path).
type SweepOptions struct {
	// Simulate adds the flit-level verification stage to every cell.
	Simulate bool
	// Sim parameterizes the simulations when Simulate is set.
	Sim SimParams
	// Certify adds the independent-checker verification stage to every
	// cell: the pre- and post-removal designs are re-checked from first
	// principles and the three-leg agreement verdict lands in the cell's
	// Certify field.
	Certify bool
	// ShardIndex/ShardCount restrict the sweep to the grid cells the
	// stable shard hash assigns to shard ShardIndex of ShardCount — the
	// worker side of the sharded backend (the /v1/sweep?shard=i/n
	// filter). ShardCount 0 sweeps the whole grid. Mutually exclusive
	// with WithWorkers, which dispatches shards instead of serving one.
	ShardIndex int
	ShardCount int
	// NoCache forces recomputation of every cell even when a
	// WithResultCache cache holds it; fresh results still refresh the
	// cache. Without a cache attached it is a no-op.
	NoCache bool
}

// Event is one entry of a Session's progress feed (see WithProgress).
// Kind selects which of the payload fields are meaningful; the feed is
// delivered synchronously on the goroutine doing the work, so handlers
// must be fast and must not call back into the same Session operation.
type Event struct {
	Kind EventKind

	// Iteration is the 1-based break ordinal (EventCycleBroken,
	// EventVCAdded).
	Iteration int
	// Break is the executed break (EventCycleBroken).
	Break *BreakRecord
	// Channel is the provisioned virtual channel (EventVCAdded).
	Channel Channel

	// CellIndex/CellTotal locate a completed sweep cell
	// (EventSweepCell).
	CellIndex int
	CellTotal int
	// Cell is the completed cell's result (EventSweepCell).
	Cell *SweepResult

	// Epoch is the simulation snapshot (EventSimEpoch).
	Epoch *SimEpoch

	// Shard/ShardTotal locate a sharded-sweep shard (EventShardAssigned,
	// EventWorkerRetry).
	Shard      int
	ShardTotal int
	// Worker is the worker URL involved (EventShardAssigned,
	// EventWorkerRetry).
	Worker string
	// WorkerErr is the failure that triggered a requeue
	// (EventWorkerRetry).
	WorkerErr string

	// Stage is the reconfiguration state-machine stage
	// (EventReconfigStage).
	Stage string
	// Fault is the link a reconfiguration is retiring
	// (EventReconfigStage, EventReconfigDelta).
	Fault LinkID
	// Delta is the committed reconfiguration report
	// (EventReconfigDelta).
	Delta *ReconfigDelta
}
