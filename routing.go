package nocdr

import (
	"context"

	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// Adaptive routing: multi-candidate route sets, turn-model generators,
// link-fault masking, and the adaptive wormhole engine. The paper's
// removal method takes an *arbitrary* route set and makes it
// deadlock-free; this surface supplies the interesting arbitrary sets —
// turn-model-restricted and fully-adaptive minimal routing, regenerated
// around link faults — and the simulator that exercises them per hop.

type (
	// RouteSet holds one or more candidate paths per flow — the unit the
	// adaptive pipeline routes, removes deadlocks from, and simulates.
	RouteSet = route.RouteSet
	// PathRef identifies one candidate path of a RouteSet.
	PathRef = route.PathRef
	// TurnModel names a routing function for 2D grids (see GridRoutes).
	TurnModel = route.TurnModel
	// GridSpec describes a 2D grid layout for the turn-model generators.
	GridSpec = route.GridSpec
	// SetRemovalResult reports a RemoveDeadlocksSet outcome.
	SetRemovalResult = core.SetResult
	// AdaptiveSelection is the per-hop output policy of the adaptive
	// simulator (FirstFree or LeastCongested).
	AdaptiveSelection = wormhole.AdaptiveSelection
)

// Re-exported turn models and adaptive selection policies.
const (
	RoutingDOR           = route.DOR
	RoutingWestFirst     = route.WestFirst
	RoutingNorthLast     = route.NorthLast
	RoutingNegativeFirst = route.NegativeFirst
	RoutingOddEven       = route.OddEven
	RoutingMinAdaptive   = route.MinimalAdaptive

	FirstFree      = wormhole.FirstFree
	LeastCongested = wormhole.LeastCongested
)

// NewRouteSet returns an empty route set sized for n flows.
func NewRouteSet(n int) *RouteSet { return route.NewRouteSet(n) }

// RouteSetFromTable lifts a single-path table into a RouteSet (one
// candidate per flow).
func RouteSetFromTable(tab *RouteTable) *RouteSet { return route.FromTable(tab) }

// ParseTurnModel resolves a canonical turn-model name ("dor",
// "west-first", "north-last", "negative-first", "odd-even",
// "min-adaptive"); the empty string means DOR.
func ParseTurnModel(s string) (TurnModel, error) { return route.ParseTurnModel(s) }

// TurnModelNames lists the canonical turn-model names.
func TurnModelNames() []string { return route.TurnModelNames() }

// ParseAdaptiveSelection resolves "first-free" / "least-congested"; the
// empty string means FirstFree.
func ParseAdaptiveSelection(s string) (AdaptiveSelection, error) {
	sel, err := wormhole.ParseAdaptiveSelection(s)
	return sel, wrapErr(err)
}

// GridRoutes generates a multi-candidate route set for every flow of g
// on a regular grid under the given turn model: up to maxPaths minimal
// paths per flow (0 = the library default), avoiding faulted links, with
// a deterministic shortest-path escape when faults break every permitted
// minimal path. See the route package documentation for the turn-model
// semantics.
func GridRoutes(grid *Grid, g *TrafficGraph, model TurnModel, maxPaths int) (*RouteSet, error) {
	set, err := route.GridRoutes(grid.Topology, g, grid.Spec(), model, maxPaths)
	return set, wrapErr(err)
}

// SelectFaults picks n links of the grid to fail, seeded and
// deterministic, never disconnecting the network; pass the result to
// Topology.Fault and regenerate routes to build a fault scenario.
func SelectFaults(grid *Grid, n int, seed int64) ([]LinkID, error) {
	ids, err := regular.SelectFaults(grid, n, seed)
	return ids, wrapErr(err)
}

// BuildCDGSet constructs the channel dependency graph over the union of
// the set's permitted channel transitions. Edge attributions name
// pseudo-flows (one per candidate path); the returned refs map them back
// to (flow, path index).
func (s *Session) BuildCDGSet(top *Topology, set *RouteSet) (*CDG, []PathRef, error) {
	c, refs, err := cdg.BuildSet(top, set)
	return c, refs, wrapErr(err)
}

// DeadlockFreeSet reports whether the route set's union CDG is acyclic.
func (s *Session) DeadlockFreeSet(top *Topology, set *RouteSet) (bool, error) {
	free, err := core.DeadlockFreeSet(top, set)
	return free, wrapErr(err)
}

// RemoveDeadlocksSet runs the removal algorithm on an adaptive route
// set under the Session's policy: the set is flattened into one
// pseudo-flow per candidate path, Algorithm 1 runs on the flattened
// table unchanged, and the rewritten paths fold back into a RouteSet
// whose union CDG is acyclic. A single-path set produces the identical
// break sequence RemoveDeadlocks would. Inputs are never mutated.
func (s *Session) RemoveDeadlocksSet(ctx context.Context, top *Topology, set *RouteSet) (*SetRemovalResult, error) {
	res, err := core.RemoveSetContext(ctx, top, set, s.removalOptions())
	return res, wrapErr(err)
}

// NewAdaptiveSimulator builds a flit-level simulator with per-hop
// adaptive output selection over the set's permitted next channels,
// wiring the Session's Event feed into the epoch callback.
func (s *Session) NewAdaptiveSimulator(top *Topology, g *TrafficGraph, set *RouteSet, cfg SimConfig) (*Simulator, error) {
	sim, err := wormhole.NewAdaptive(top, g, set, s.simConfig(cfg))
	return sim, wrapErr(err)
}

// SimulateAdaptive builds an adaptive simulator and runs it to
// completion, honoring ctx inside the flit-stepping loop.
func (s *Session) SimulateAdaptive(ctx context.Context, top *Topology, g *TrafficGraph, set *RouteSet, cfg SimConfig) (*SimStats, error) {
	sim, err := wormhole.NewAdaptive(top, g, set, s.simConfig(cfg))
	if err != nil {
		return nil, wrapErr(err)
	}
	st, err := sim.RunContext(ctx)
	return st, wrapErr(err)
}
