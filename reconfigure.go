package nocdr

import (
	"context"

	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/reconfig"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
)

// Online reconfiguration surface: evolve an already-removed design
// through live link-fault events instead of re-running the batch
// pipeline. See DESIGN.md §9 for the state machine and guarantees.
type (
	// ReconfigDesign is a self-contained removed design bundle — grid
	// shape, turn model, topology with VC assignment and fault mask,
	// traffic, candidate routes — the unit `nocexp design` writes and
	// Reconfigure evolves. (Distinct from Design, the synthesis result.)
	ReconfigDesign = reconfig.Design
	// ReconfigDelta is the typed report of one committed fault event.
	ReconfigDelta = reconfig.Delta
	// ReconfigBreak is one replay cycle break in report form.
	ReconfigBreak = reconfig.DeltaBreak
	// ReconfigDowntime is the simulator-derived transition-cost estimate.
	ReconfigDowntime = reconfig.Downtime
)

// Reconfiguration stage names, in state-machine order (the values of
// Event.Stage on EventReconfigStage).
const (
	StageRerouting  = reconfig.StageRerouting
	StageReplaying  = reconfig.StageReplaying
	StageSimulating = reconfig.StageSimulating
	StageCommitted  = reconfig.StageCommitted
	StageRolledBack = reconfig.StageRolledBack
)

// ReconfigOptions configures one Reconfigure call beyond the Session's
// own policy (WithVCLimit bounds the replay's additions, WithPolicy /
// WithSelection / WithMaxIterations apply to the replay loop).
type ReconfigOptions struct {
	// SkipSim omits the downtime estimate.
	SkipSim bool
	// SimCycles is the downtime simulation horizon (0 = library
	// default).
	SimCycles int64
}

// ReconfigResult couples the committed design with the per-fault
// reports, in the order the faults were applied.
type ReconfigResult struct {
	Design *ReconfigDesign
	Deltas []*ReconfigDelta
}

// NewReconfigDesign builds a removed ReconfigDesign on a regular grid:
// mesh or torus (wrap), turn-model candidate routes under the Session's
// WithMaxPaths, then deadlock removal under the Session's policy. The
// model name uses the canonical turn-model spellings (see
// ParseTurnModel).
func (s *Session) NewReconfigDesign(ctx context.Context, cols, rows int, wrap bool, model string, g *TrafficGraph) (*ReconfigDesign, error) {
	tm, err := route.ParseTurnModel(model)
	if err != nil {
		return nil, wrapErr(err)
	}
	var grid *regular.Grid
	if wrap {
		grid, err = regular.Torus(cols, rows)
	} else {
		grid, err = regular.Mesh(cols, rows)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	d, _, err := reconfig.NewContext(ctx, grid, g, tm, s.maxPaths, s.removalOptions())
	return d, wrapErr(err)
}

// Reconfigure applies link-fault events to a removed design, one at a
// time in the given order: each event reroutes only the flows the fault
// displaces (same turn-model semantics that generated the design,
// including the any-turn BFS escape), replays the removal from the
// existing VC assignment, verifies the result, estimates downtime in
// the simulator, and commits — or rolls the event back atomically,
// leaving the design exactly as the previous event left it. The input
// design is never mutated; the returned result carries the evolved copy
// plus one ReconfigDelta per committed event.
//
// The progress feed receives EventReconfigStage transitions,
// EventCycleBroken/EventVCAdded for each replay break, and one
// EventReconfigDelta per commit. A failed event aborts the sequence:
// earlier events' commits are retained in the returned result alongside
// the error.
func (s *Session) Reconfigure(ctx context.Context, d *ReconfigDesign, faults []LinkID, opts ReconfigOptions) (*ReconfigResult, error) {
	st, err := reconfig.NewState(d)
	if err != nil {
		return nil, wrapErr(err)
	}
	res := &ReconfigResult{Design: st.Design(), Deltas: []*ReconfigDelta{}}
	for _, fault := range faults {
		delta, err := st.ApplyFault(ctx, fault, s.reconfigOptions(opts))
		if err != nil {
			res.Design = st.Design()
			return res, wrapErr(err)
		}
		res.Deltas = append(res.Deltas, delta)
		if s.progress != nil {
			s.progress(Event{Kind: EventReconfigDelta, Fault: fault, Delta: delta})
		}
	}
	res.Design = st.Design()
	return res, nil
}

// reconfigOptions materializes one fault event's options from the
// Session configuration, wiring the Event feed into the state machine
// and the replay's break loop.
func (s *Session) reconfigOptions(opts ReconfigOptions) reconfig.Options {
	ro := reconfig.Options{
		VCLimit:       s.vcLimit,
		MaxIterations: s.maxIterations,
		Selection:     s.selection,
		Policy:        s.policy,
		SkipSim:       opts.SkipSim,
		SimCycles:     opts.SimCycles,
	}
	if s.progress != nil {
		ro.OnStage = func(stage string, fault LinkID) {
			s.progress(Event{Kind: EventReconfigStage, Stage: stage, Fault: fault})
		}
		iter := 0
		ro.OnBreak = func(rec core.BreakRecord) {
			iter++
			r := rec
			s.progress(Event{Kind: EventCycleBroken, Iteration: iter, Break: &r})
			for _, ch := range rec.NewChannels {
				s.progress(Event{Kind: EventVCAdded, Iteration: iter, Channel: ch})
			}
		}
	}
	return ro
}
