package nocdr

import (
	"fmt"
	"io"
	"os"

	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
)

// This file holds the JSON/DOT I/O surface of the public API: topologies,
// communication graphs and route tables all round-trip through stable,
// human-editable JSON schemas, and topologies/CDGs render to Graphviz DOT.
// Every error is wrapped "nocdr: ..."; malformed inputs additionally wrap
// ErrInvalidInput for errors.Is.

// ReadTopology parses a topology from JSON.
func ReadTopology(r io.Reader) (*Topology, error) {
	top, err := topology.Read(r)
	return top, wrapErr(err)
}

// ReadTraffic parses a communication graph from JSON.
func ReadTraffic(r io.Reader) (*TrafficGraph, error) {
	g, err := traffic.Read(r)
	return g, wrapErr(err)
}

// ReadRoutes parses a route table from JSON.
func ReadRoutes(r io.Reader) (*RouteTable, error) {
	tab, err := route.Read(r)
	return tab, wrapErr(err)
}

// LoadTopology reads a topology from a JSON file.
func LoadTopology(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nocdr: %w", err)
	}
	defer f.Close()
	return ReadTopology(f)
}

// LoadTraffic reads a communication graph from a JSON file.
func LoadTraffic(path string) (*TrafficGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nocdr: %w", err)
	}
	defer f.Close()
	return ReadTraffic(f)
}

// LoadRoutes reads a route table from a JSON file.
func LoadRoutes(path string) (*RouteTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nocdr: %w", err)
	}
	defer f.Close()
	return ReadRoutes(f)
}

// SaveJSON writes any of the JSON-serializable artifacts (*Topology,
// *TrafficGraph, *RouteTable) to a file.
func SaveJSON(path string, artifact interface{ Write(io.Writer) error }) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nocdr: %w", err)
	}
	defer f.Close()
	if err := artifact.Write(f); err != nil {
		return wrapErr(err)
	}
	return wrapErr(f.Close())
}
