package nocdr

import (
	"context"

	"github.com/nocdr/nocdr/internal/wormhole"
)

// SimVariant is one lane of a simulation batch: a (seed, load)
// instantiation of the shared design. Zero fields inherit the base
// SimConfig.
type SimVariant = wormhole.Variant

// SimBatch is the lockstep multi-variant simulator (see
// Session.NewSimBatch): one shared design, N independent (seed, load)
// lanes stepped in a single pass.
type SimBatch = wormhole.Batch

// SimSpec bundles everything a batched simulation varies: the seed and
// load axes, the cycle budget, the adaptive selection policy, and the
// base configuration every lane inherits.
//
// The batch runs the cross product Seeds × Loads, one lane per pair. An
// empty Seeds (or Loads) axis means "the base config's value", so the
// zero SimSpec with just Base set is exactly one base-config run —
// Session.Simulate is that thin wrapper.
type SimSpec struct {
	// Seeds is the injection-seed axis; empty means [Base.Seed], a 0
	// entry means Base.Seed.
	Seeds []int64
	// Loads is the load-factor axis, values in (0, 1]; empty means
	// [Base.LoadFactor], a 0 entry means Base.LoadFactor.
	Loads []float64
	// Cycles, when > 0, overrides Base.MaxCycles — the cycle budget
	// every lane runs under.
	Cycles int64
	// Adaptive, when non-zero, overrides Base.Adaptive (only meaningful
	// for adaptive simulators; the table engine ignores it).
	Adaptive AdaptiveSelection
	// Base is the configuration every lane starts from.
	Base SimConfig
}

// variants expands the spec's Seeds × Loads cross product, lane-major by
// seed.
func (spec SimSpec) variants() []SimVariant {
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []int64{0}
	}
	loads := spec.Loads
	if len(loads) == 0 {
		loads = []float64{0}
	}
	vs := make([]SimVariant, 0, len(seeds)*len(loads))
	for _, sd := range seeds {
		for _, ld := range loads {
			vs = append(vs, SimVariant{Seed: sd, Load: ld})
		}
	}
	return vs
}

// config folds the spec's overrides into the base configuration.
func (spec SimSpec) config(base SimConfig) SimConfig {
	if spec.Cycles > 0 {
		base.MaxCycles = spec.Cycles
	}
	if spec.Adaptive != 0 {
		base.Adaptive = spec.Adaptive
	}
	return base
}

// VariantStats is one lane's outcome, tagged with the (normalized) seed
// and load that produced it.
type VariantStats struct {
	Seed  int64
	Load  float64
	Stats *SimStats
}

// BatchStats is the outcome of Session.SimulateBatch: per-variant stats
// in Seeds × Loads cross-product order (seed-major).
type BatchStats struct {
	Variants []VariantStats
}

// SimulateBatch simulates every (seed, load) variant of the spec over
// one shared design in lockstep: construction — route validation, dense
// route indices, next-hop tables — happens once, each lane owns only its
// mutable state, and per-variant stats are byte-identical to independent
// Session.Simulate runs with the same seeds (the differential tests pin
// this). Lanes are fanned across WithParallel goroutines; ctx is honored
// inside the stepping loop, and EventSimEpoch snapshots stream to the
// Session's progress feed (from every lane, concurrently under
// WithParallel > 1).
func (s *Session) SimulateBatch(ctx context.Context, top *Topology, g *TrafficGraph, tab *RouteTable, spec SimSpec) (*BatchStats, error) {
	b, err := wormhole.NewBatch(top, g, tab, spec.config(s.simConfig(spec.Base)), spec.variants())
	if err != nil {
		return nil, wrapErr(err)
	}
	out, err := b.RunContext(ctx, s.parallel)
	if err != nil {
		return nil, wrapErr(err)
	}
	bs := &BatchStats{Variants: make([]VariantStats, len(out))}
	for i, v := range b.Variants() {
		bs.Variants[i] = VariantStats{Seed: v.Seed, Load: v.Load, Stats: out[i]}
	}
	return bs, nil
}

// NewSimBatch builds the batch without running it, for callers that
// drive lanes themselves; the Session's progress feed is attached the
// same way Simulate attaches it.
func (s *Session) NewSimBatch(top *Topology, g *TrafficGraph, tab *RouteTable, spec SimSpec) (*SimBatch, error) {
	b, err := wormhole.NewBatch(top, g, tab, spec.config(s.simConfig(spec.Base)), spec.variants())
	return b, wrapErr(err)
}
