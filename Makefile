# Local dev and CI run identical commands: .github/workflows/ci.yml calls
# these targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench fmt vet fuzz-smoke examples ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration pass over every benchmark; CI uploads the output as an
# artifact so regressions are visible per-commit.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Ten seconds per fuzz target across every package that defines one.
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); do \
			echo "fuzzing $$pkg $$target"; \
			$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=10s $$pkg || exit 1; \
		done; \
	done

# Examples have no test files; build each so they cannot silently rot.
examples:
	$(GO) build ./examples/...

ci: build vet fmt race examples
