# Local dev and CI run identical commands: .github/workflows/ci.yml calls
# these targets, so a green `make ci` locally means a green pipeline.

GO ?= go
# Output file for the pinned regression benchmarks (bench-pin).
BENCH_OUT ?= bench-pin.txt

.PHONY: build test race bench bench-pin fmt vet lint fuzz-smoke sweep-smoke examples ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration pass over every benchmark; CI uploads the output as an
# artifact so regressions are visible per-commit.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The pinned perf-gate benchmarks: simulator hot loop, removal runtime,
# and the Session-API overhead twin (which must track BenchmarkRemoval_
# within ~2%), repeated so benchstat can establish significance. CI runs
# this on the PR head and base and fails on a >15% sec/op regression.
bench-pin:
	$(GO) test -run='^$$' -bench='^(BenchmarkSimStep$$|BenchmarkRemoval_|BenchmarkSessionOverhead$$)' \
		-count=6 -benchtime=0.5s . | tee $(BENCH_OUT)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis. CI installs staticcheck and fails on findings; local
# runs skip gracefully when the binary is absent (the container image may
# have no network to install it).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Simulated verification sweep on one benchmark with two seeds; CI asserts
# zero post-removal deadlocks in the JSON report. The sweep itself exits
# nonzero if any post-removal design deadlocks.
sweep-smoke:
	$(GO) run ./cmd/nocexp sweep -simulate -benchmarks D26_media,torus:4x4:uniform \
		-switches 8,14 -seeds 0,1 -quiet -json sweep-report.json

# Ten seconds per fuzz target across every package that defines one.
fuzz-smoke:
	@for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); do \
			echo "fuzzing $$pkg $$target"; \
			$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=10s $$pkg || exit 1; \
		done; \
	done

# Examples have no test files; build each so they cannot silently rot.
examples:
	$(GO) build ./examples/...

# Run every example end to end (CI fans this out as a matrix; locally it
# is a serial smoke pass over the whole public API surface).
examples-run:
	@for d in examples/*/; do \
		echo "== running $$d"; \
		$(GO) run ./$$d > /dev/null || exit 1; \
	done

# End-to-end smoke of the HTTP job service: start `nocdr serve`, POST a
# benchmark design to /v1/remove, poll the job, and jq-assert the result
# is deadlock-free. CI runs this as its own job.
serve-smoke:
	./scripts/serve-smoke.sh

ci: build vet fmt lint race examples sweep-smoke
