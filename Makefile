# Local dev and CI run identical commands: .github/workflows/ci.yml calls
# these targets, so a green `make ci` locally means a green pipeline.

GO ?= go
# Output file for the pinned regression benchmarks (bench-pin).
BENCH_OUT ?= bench-pin.txt
# Per-target budget and package scope for fuzz-smoke; deep-verify.yml
# overrides both (FUZZTIME=5m, one package per matrix job).
FUZZTIME ?= 10s
FUZZ_PKGS ?= ./...
# Minimum total statement coverage accepted by the cover gate.
COVER_MIN ?= 75

.PHONY: build test race bench bench-pin fmt vet lint vulncheck cover fuzz-smoke sweep-smoke sweep-smoke-sharded deep-sweep deep-loadsweep reconfigure-smoke deep-reconfigure certify-smoke deep-certify examples fabric-conformance compose-smoke k8s-validate ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One-iteration pass over every benchmark; CI uploads the output as an
# artifact so regressions are visible per-commit.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# The pinned perf-gate benchmarks: simulator hot loop, removal runtime,
# the Session-API overhead twin (which must track BenchmarkRemoval_
# within ~2%), the reconfiguration delta-vs-cold pair (the delta
# path's whole reason to exist is being much cheaper than a from-scratch
# removal, so a regression there is a product regression), and the
# lockstep batch-vs-sequential pair (the batch engine's ≥5x multi-core
# advantage over 16 independent runs must not erode), and the fabric
# result-cache hot path (the per-cell overhead every cached sweep pays),
# repeated so benchstat can establish significance. CI runs this on the
# PR head and base and fails on a >15% sec/op regression.
bench-pin:
	$(GO) test -run='^$$' -bench='^(BenchmarkSimStep$$|BenchmarkRemoval_|BenchmarkSessionOverhead$$|BenchmarkReconfigure_|BenchmarkLockstep|BenchmarkCache)' \
		-count=6 -benchtime=0.5s . | tee $(BENCH_OUT)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Known-vulnerability scan. CI installs govulncheck and fails on
# findings; local runs skip gracefully when the binary is absent.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Full-suite coverage with a floor on the total: new scenario surface
# must bring its tests along. Alongside the profile it writes
# cover-packages.txt — one "package percent" row per tested package —
# which the CI coverage job diffs against the previous run's table to
# print per-package deltas.
cover:
	$(GO) test -coverprofile=cover.out ./... | tee cover-test.out
	@awk '/coverage:/ { pkg = ($$1 == "ok") ? $$2 : $$1; \
		for (i = 1; i <= NF; i++) if ($$i == "coverage:") { pct = $$(i+1); sub(/%/, "", pct); print pkg, pct } }' \
		cover-test.out | sort > cover-packages.txt
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total statement coverage: $$total% (floor: $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t + 0 < min + 0) ? 1 : 0 }' || { \
		echo "coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

# Static analysis. CI installs staticcheck and fails on findings; local
# runs skip gracefully when the binary is absent (the container image may
# have no network to install it).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Simulated verification sweeps: the tool itself exits non-zero on any
# post-removal deadlock (or if nothing simulated), so CI just runs these
# and archives the reports. First the classic single-path grid, then a
# faulted adaptive mesh exercising the routing and fault axes.
sweep-smoke:
	$(GO) run ./cmd/nocexp sweep -simulate -benchmarks D26_media,torus:4x4:uniform \
		-switches 8,14 -seeds 0,1 -quiet -json sweep-report.json
	$(GO) run ./cmd/nocexp sweep -simulate -benchmarks mesh:4 \
		-routing odd-even,min-adaptive -faults 1 -seeds 0 -quiet \
		-json sweep-report-adaptive.json

# The distributed-path smoke: the same faulted grid swept serially and
# sharded across two in-process serve workers must produce byte-identical
# JSON reports (cmp exits non-zero on the first differing byte).
sweep-smoke-sharded:
	$(GO) run ./cmd/nocexp sweep -benchmarks mesh:4,torus:4x4:transpose \
		-routing west-first,odd-even -faults 1 -parallel 1 -quiet \
		-json sweep-serial.json
	$(GO) run ./cmd/nocexp sweep -benchmarks mesh:4,torus:4x4:transpose \
		-routing west-first,odd-even -faults 1 -shard-local 2 -quiet \
		-json sweep-sharded.json
	cmp sweep-serial.json sweep-sharded.json
	@echo "sharded report is byte-identical to serial"

# The nightly tier's scenario surface: 8x8 and 10x10 meshes and tori,
# every turn model plus fully-adaptive minimal routing, two seeded link
# faults per cell, with flit-level verification. The mesh cells carry
# adversarial permutation traffic (bit-reversal gives min-adaptive a
# genuinely cyclic union CDG, so removal has real work; transpose
# stresses turn diversity) and the torus cells are the textbook dateline
# hazard. ~50 cells, sharded across four in-process workers through the
# same distributed path production deployments use (-shard-local keeps
# the report byte-identical to a serial run by construction).
deep-sweep:
	$(GO) run ./cmd/nocexp sweep -simulate -faults 2 \
		-benchmarks mesh:8x8:bitrev,mesh:8x8:transpose,mesh:10x10:transpose,torus:8,torus:10 \
		-routing west-first,north-last,negative-first,odd-even,min-adaptive \
		-seeds 0,1 -quiet -shard-local 4 -json deep-sweep-report.json

# The nightly load-sweep surface: 8x8 mesh and torus under three turn
# models, 8 seeds x 5 injection loads per design through the lockstep
# batch path, producing per-design latency/throughput curves with
# saturation points in the report. The -loads axis rides the same
# grouped scheduler the PR-tier sweeps use, so this also soaks the
# batch engine at nightly scale.
deep-loadsweep:
	$(GO) run ./cmd/nocexp sweep -simulate \
		-benchmarks mesh:8x8:transpose,torus:8:transpose \
		-routing west-first,odd-even,min-adaptive \
		-seeds 1,2,3,4,5,6,7,8 -loads 0.1,0.3,0.5,0.7,0.9 \
		-quiet -json deep-loadsweep-report.json

# Online-reconfiguration smoke: build an 8x8 odd-even design bundle,
# then inject two seeded link faults one at a time through the live
# reconfigure path. The gate lives in the tool: `nocexp reconfigure`
# exits non-zero if any delta leaves a cyclic CDG, if the drain
# simulation deadlocks, or if the final design fails verification.
# -differential additionally runs a from-scratch removal on the faulted
# design and prints both VC counts next to each other in the log.
reconfigure-smoke:
	$(GO) run ./cmd/nocexp design -preset mesh:8x8 -routing odd-even \
		-traffic all-to-all -out reconfig-design.json
	$(GO) run ./cmd/nocexp reconfigure -design reconfig-design.json \
		-fault-count 2 -fault-seed 1 -differential \
		-out reconfig-after.json -delta reconfig-deltas.json

# The nightly reconfiguration surface: mesh and torus 8x8 under three
# turn models, each hit with a bounded fault storm (sequential seeded
# faults, re-verified after every event, until no connectivity-
# preserving fault remains or the bound is reached). Every event runs
# the full commit protocol including the drain simulation.
deep-reconfigure:
	@for preset in mesh:8x8 torus:8x8; do \
		for routing in west-first north-last odd-even; do \
			echo "== deep-reconfigure $$preset $$routing"; \
			$(GO) run ./cmd/nocexp design -preset $$preset -routing $$routing \
				-traffic all-to-all -out deep-reconfig-design.json || exit 1; \
			$(GO) run ./cmd/nocexp reconfigure -design deep-reconfig-design.json \
				-storm -storm-max 12 -quiet || exit 1; \
		done; \
	done

# Certified-verification smoke: certify mesh and torus design bundles,
# re-validate each certificate with the independent shell/jq checker
# (no Go involved in the re-check), run a certified sweep through the
# in-tool three-leg agreement gate, and prove the re-check rejects a
# forged certificate over a seeded-bug design.
certify-smoke:
	./scripts/certify-smoke.sh

# The nightly certified surface: the full turn-model matrix with both
# -simulate and -certify, so every cell carries all three legs —
# structural removal, certified re-check, empirical simulation — and the
# in-tool agreement gate is the verdict. Any cell where the independent
# checker disagrees with the engine or the simulator exits non-zero.
deep-certify:
	$(GO) run ./cmd/nocexp sweep -simulate -certify \
		-benchmarks mesh:8x8:transpose,mesh:8x8:bitrev,torus:8 \
		-routing west-first,north-last,negative-first,odd-even,min-adaptive \
		-seeds 0,1 -quiet -json deep-certify-report.json

# FUZZTIME per fuzz target across every package of FUZZ_PKGS that
# defines one (PR tier: 10s smoke over ./...; nightly: 5m per package).
fuzz-smoke:
	@for pkg in $$($(GO) list $(FUZZ_PKGS)); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); do \
			echo "fuzzing $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
		done; \
	done

# Examples have no test files; build each so they cannot silently rot.
examples:
	$(GO) build ./examples/...

# Run every example end to end (CI fans this out as a matrix; locally it
# is a serial smoke pass over the whole public API surface).
examples-run:
	@for d in examples/*/; do \
		echo "== running $$d"; \
		$(GO) run ./$$d > /dev/null || exit 1; \
	done

# End-to-end smoke of the HTTP job service: start `nocdr serve`, POST a
# benchmark design to /v1/remove, poll the job, and jq-assert the result
# is deadlock-free. CI runs this as its own job.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end conformance of the job fabric: coordinator + two joined
# workers behind a bearer token, the same sweep twice through
# -coordinator with an on-disk cache (run 2 must be >= 90% hits and
# byte-identical), plus auth and registry assertions, and a final mTLS
# leg (gencert-minted PKI, joined worker, sweep over https). CI runs
# this as its own job.
fabric-conformance:
	./scripts/fabric-conformance.sh

# Schema-validate the Kubernetes manifests in deploy/k8s. CI installs
# kubeconform and fails on findings; local runs without it still render
# the kustomization (catching YAML/kustomize errors), and skip entirely
# when kubectl is absent too.
k8s-validate:
	@if ! command -v kubectl >/dev/null 2>&1; then \
		echo "kubectl not installed; skipping k8s manifest validation"; \
	elif command -v kubeconform >/dev/null 2>&1; then \
		kubectl kustomize deploy/k8s | kubeconform -strict -summary; \
	else \
		kubectl kustomize deploy/k8s > /dev/null; \
		echo "k8s manifests render cleanly (kubeconform not installed; schema check skipped)"; \
	fi

# Container smoke of the fleet topology docker-compose.yml describes:
# build the image, bring up coordinator + two workers, assert the
# registry converges, tear down. Nightly tier (needs a docker daemon).
compose-smoke:
	docker compose build
	docker compose up -d
	@for i in $$(seq 1 60); do \
		n=$$(curl -fsS http://127.0.0.1:8080/v1/workers 2>/dev/null | jq .count 2>/dev/null || echo 0); \
		[ "$$n" = "2" ] && break; sleep 1; \
	done; \
	curl -fsS http://127.0.0.1:8080/healthz | jq -e '.status == "ok" and .workers == 2' || \
		{ docker compose logs; docker compose down -v; exit 1; }
	docker compose down -v
	@echo "compose-smoke: OK"

ci: build vet fmt lint vulncheck race cover examples sweep-smoke sweep-smoke-sharded reconfigure-smoke certify-smoke fabric-conformance k8s-validate
