// Command gencert generates the fleet's TLS material: one self-signed
// CA plus a server and a client leaf, written as PEM files into -dir.
// The leaves carry both server- and client-auth usages, so the same pair
// serves a `nocdr serve -tls-cert/-tls-key` listener and an mTLS client.
// Pure stdlib (via internal/fabric's certgen) — no openssl dependency,
// so CI and the conformance scripts can mint throwaway PKI anywhere the
// go toolchain runs.
//
// Usage:
//
//	go run ./scripts/gencert -dir certs -hosts 127.0.0.1,localhost
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/nocdr/nocdr/internal/fabric"
)

func main() {
	dir := flag.String("dir", "certs", "output directory for the PEM files (created if missing)")
	hosts := flag.String("hosts", "127.0.0.1,localhost", "comma-separated IPs/DNS names the server certificate must cover")
	name := flag.String("name", "nocdr-fleet", "common-name prefix for the CA and leaves")
	flag.Parse()

	var hostList []string
	for _, h := range strings.Split(*hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hostList = append(hostList, h)
		}
	}
	if len(hostList) == 0 {
		fatal(fmt.Errorf("gencert: -hosts must name at least one IP or DNS name"))
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	ca, err := fabric.NewCertAuthority(*name + "-ca")
	if err != nil {
		fatal(err)
	}
	serverCert, serverKey, err := ca.Issue(*name+"-server", hostList)
	if err != nil {
		fatal(err)
	}
	clientCert, clientKey, err := ca.Issue(*name+"-client", hostList)
	if err != nil {
		fatal(err)
	}

	files := []struct {
		name string
		data []byte
		mode os.FileMode
	}{
		{"ca.pem", ca.CertPEM, 0o644},
		{"ca-key.pem", ca.KeyPEM, 0o600},
		{"server.pem", serverCert, 0o644},
		{"server-key.pem", serverKey, 0o600},
		{"client.pem", clientCert, 0o644},
		{"client-key.pem", clientKey, 0o600},
	}
	for _, f := range files {
		p := filepath.Join(*dir, f.name)
		if err := os.WriteFile(p, f.data, f.mode); err != nil {
			fatal(err)
		}
		fmt.Println(p)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
