#!/usr/bin/env bash
# End-to-end smoke test of `nocdr serve`: synthesize a benchmark design,
# submit it to /v1/remove over HTTP, poll the job to completion, and
# assert (with jq) that the repaired design is deadlock-free. Exercises
# the same path the CI serve-smoke job gates.
set -euo pipefail

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== building binaries"
go build -o "$DIR/nocdr" ./cmd/nocdr

echo "== preparing a D36_8 design (its 10-switch synthesis has a cyclic CDG) (traffic -> synth -> topology+routes)"
"$DIR/nocdr" bench -name D36_8 -out "$DIR/traffic.json"
"$DIR/nocdr" synth -traffic "$DIR/traffic.json" -switches 10 \
    -out-topology "$DIR/topology.json" -out-routes "$DIR/routes.json"

echo "== starting nocdr serve on :$PORT"
"$DIR/nocdr" serve -addr "127.0.0.1:${PORT}" &
SERVE_PID=$!
for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' > /dev/null

echo "== submitting /v1/remove"
jq -n --slurpfile topo "$DIR/topology.json" --slurpfile routes "$DIR/routes.json" \
    '{topology: $topo[0], routes: $routes[0]}' > "$DIR/request.json"
JOB=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    --data @"$DIR/request.json" "$BASE/v1/remove" | jq -r .id)
echo "   job: $JOB"

echo "== polling job to completion"
for i in $(seq 1 100); do
    STATE=$(curl -fsS "$BASE/v1/jobs/$JOB" | jq -r .state)
    [ "$STATE" = "done" ] && break
    if [ "$STATE" = "failed" ] || [ "$STATE" = "canceled" ]; then
        echo "job ended in state $STATE" >&2
        curl -fsS "$BASE/v1/jobs/$JOB" | jq . >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "$BASE/v1/jobs/$JOB" > "$DIR/job.json"

echo "== asserting the result is deadlock-free (acyclic CDG)"
jq -e '.state == "done"' "$DIR/job.json" > /dev/null
jq -e '.result.deadlock_free == true' "$DIR/job.json" > /dev/null
jq -e '.result.topology.links | length > 0' "$DIR/job.json" > /dev/null
jq -e '.result.added_vcs >= 1' "$DIR/job.json" > /dev/null
echo "   deadlock_free: true, added_vcs: $(jq .result.added_vcs "$DIR/job.json")"

echo "== checking the SSE event stream replays"
# Buffer the stream to a file: piping into `grep -q` would EPIPE curl
# once grep matches and fail the script under pipefail.
curl -fsS --max-time 5 "$BASE/v1/jobs/$JOB/events" > "$DIR/events.sse"
grep -q "event: cycle_broken" "$DIR/events.sse"
grep -q "event: state" "$DIR/events.sse"

echo "serve-smoke: OK"
