#!/usr/bin/env bash
# PR-tier smoke of the certified verification pipeline:
#
#   1. synthesize mesh and torus design bundles, certify each with
#      `nocexp certify`, and re-validate every certificate with the
#      independent shell/jq checker (scripts/certify-check.sh) — the
#      certificate must convince a verifier that shares nothing with the
#      Go toolchain that produced it;
#   2. run a small sweep with -certify and let the in-tool three-leg
#      agreement gate be the verdict;
#   3. seeded-bug check: a hand-built cyclic design paired with a forged
#      "acyclic" certificate (correct digest, correct shape, impossible
#      witness) MUST fail the shell re-check — proving the re-check can
#      actually reject, not just accept.
set -euo pipefail

cd "$(dirname "$0")/.."
# CERTIFY_OUT keeps the designs and certificates (CI uploads them as
# artifacts on failure); unset, a temp dir is used and cleaned up.
if [ -n "${CERTIFY_OUT:-}" ]; then
    DIR="$CERTIFY_OUT"
    mkdir -p "$DIR"
else
    DIR="$(mktemp -d)"
    trap 'rm -rf "$DIR"' EXIT
fi

echo "== building nocexp"
go build -o "$DIR/nocexp" ./cmd/nocexp

for spec in "mesh:6x6 odd-even" "torus:4x4 west-first"; do
    preset="${spec% *}"
    routing="${spec#* }"
    name="${preset//:/-}"
    echo "== certifying $preset ($routing)"
    "$DIR/nocexp" design -preset "$preset" -routing "$routing" \
        -traffic all-to-all -out "$DIR/$name.json"
    "$DIR/nocexp" certify -design "$DIR/$name.json" -out "$DIR/$name.cert.json"
    ./scripts/certify-check.sh "$DIR/$name.json" "$DIR/$name.cert.json"
done

echo "== certified sweep (in-tool three-leg gate)"
"$DIR/nocexp" sweep -certify -simulate -sim-cycles 3000 \
    -benchmarks mesh:3x3,torus:4x4 -seeds 0 -quiet \
    -json "$DIR/certify-sweep.json"
jq -e '[.results[].certify.agree] | all' "$DIR/certify-sweep.json" >/dev/null

echo "== seeded-bug fixture (forged certificate must be rejected)"
# A 3-ring of single-VC links closed by one route: the CDG is the cycle
# 0:0 -> 1:0 -> 2:0 -> 0:0 and admits no topological order.
cat > "$DIR/bug-design.json" <<'EOF'
{"topology":{"links":[{"id":0,"vcs":1},{"id":1,"vcs":1},{"id":2,"vcs":1}]},"routes":{"routes":[{"flow":0,"channels":[{"link":0,"vc":0},{"link":1,"vc":0},{"link":2,"vc":0},{"link":0,"vc":0}]}]}}
EOF
# Forge the strongest possible fake: right salt, right version, right
# digest, plausible counts, and a claimed order over exactly the live
# channels. Only the edge-forwardness re-check can catch it — the ring's
# closing edge must point backward in ANY order.
jq -n --arg sha "$(sha256sum "$DIR/bug-design.json" | awk '{print $1}')" '{
    checker_version: 1, salt: "nocdr-certify/1", design_sha256: $sha,
    mode: "post", channels: 3, dependencies: 3, acyclic: true,
    topo_order: [{link:0,vc:0},{link:1,vc:0},{link:2,vc:0}]
}' > "$DIR/bug-cert.json"
if ./scripts/certify-check.sh "$DIR/bug-design.json" "$DIR/bug-cert.json" 2>/dev/null; then
    echo "certify-smoke: FAIL: the forged certificate passed the shell re-check" >&2
    exit 1
fi
echo "   forged certificate rejected, as it must be"

# And the Go tool itself must refuse the cyclic design without -pre.
if "$DIR/nocexp" certify -design "$DIR/bug-design.json" >/dev/null 2>&1; then
    echo "certify-smoke: FAIL: nocexp certify accepted a cyclic post design" >&2
    exit 1
fi
echo "   cyclic design rejected by nocexp certify, as it must be"

echo "certify-smoke: OK"
