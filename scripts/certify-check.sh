#!/usr/bin/env bash
# Independent re-check of a `nocexp certify` acyclicity certificate,
# deliberately written in shell + jq so it shares no code — not even a
# language runtime — with the Go checker it audits. Given the design
# bundle and its certificate, it re-verifies the witness from raw JSON:
#
#   1. the certificate's design_sha256 matches sha256sum of the bundle,
#   2. the claimed checker identity is the current one,
#   3. the topological order is a permutation of exactly the live
#      channels (every (link, vc) of every non-faulted link, no more,
#      no fewer, no duplicates),
#   4. every dependency edge — each consecutive channel pair of every
#      route in the bundle — goes strictly forward in that order.
#
# A forged certificate that survives 1-3 still cannot survive 4: a
# cyclic design admits no order in which all its edges point forward.
#
# Usage: certify-check.sh <design.json> <certificate.json>
set -euo pipefail

DESIGN="${1:?usage: certify-check.sh <design.json> <certificate.json>}"
CERT="${2:?usage: certify-check.sh <design.json> <certificate.json>}"

fail() { echo "certify-check: FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null || fail "jq is required"

echo "== certify-check: $CERT against $DESIGN"

# 1. The certificate must be bound to these exact design bytes.
want=$(jq -er '.design_sha256' "$CERT") || fail "certificate has no design_sha256"
got=$(sha256sum "$DESIGN" | awk '{print $1}')
[ "$want" = "$got" ] || fail "design digest mismatch: certificate $want, file $got"

# 2. Checker identity: a certificate from a different checker build must
# be re-issued, not re-validated.
jq -e '.salt == "nocdr-certify/1" and .checker_version == 1' "$CERT" >/dev/null \
    || fail "unexpected checker identity: $(jq -c '{salt, checker_version}' "$CERT")"

# 3 + 4. The witness itself, re-derived from raw JSON.
jq -e -n --slurpfile c "$CERT" --slurpfile d "$DESIGN" '
    def key: "\(.link):\(.vc)";
    $c[0] as $cert | $d[0] as $design |

    ($cert.acyclic == true) as $acyclic |
    ($cert.topo_order // []) as $ord |

    # Position of every ordered channel; duplicates collapse here and are
    # caught by the length comparison below.
    (reduce range(0; $ord | length) as $i ({}; . + {($ord[$i] | key): $i})) as $pos |

    # The live channel universe: every VC of every non-faulted link.
    ($design.topology.faults // []) as $faults |
    ([ $design.topology.links[]
       | select([.id] | inside($faults) | not)
       | .id as $l | .vcs as $n | range(0; $n) as $v | {link: $l, vc: $v}
     ]) as $chans |

    # Every dependency edge of every route, both bundle schemas.
    ([ ($design.routes.flows // [])[].paths[],
       ($design.routes.routes // [])[].channels
     ]) as $paths |

    $acyclic
    and ($ord | length) == ($chans | length)
    and ($pos | length) == ($ord | length)
    and ($cert.channels == ($chans | length))
    and ([ $chans[] | key ] | all(. as $k | $pos | has($k)))
    and ([ $paths[]
           | . as $p
           | range(0; ($p | length) - 1)
           | { a: ($p[.] | key), b: ($p[. + 1] | key) }
         ] | all($pos[.a] < $pos[.b]))
' >/dev/null || fail "witness validation failed: the topological order does not certify this design"

echo "certify-check: OK ($(jq -r '.channels' "$CERT") channels, $(jq -r '.dependencies' "$CERT") dependencies)"
