#!/usr/bin/env bash
# End-to-end conformance of the job fabric: a coordinator plus two
# workers that join it over the registry protocol, all behind a shared
# bearer token. The same sweep runs twice through `nocexp sweep
# -coordinator` with an on-disk result cache; the second run must be
# answered (almost) entirely from the cache — >= 90% hit rate — and both
# reports must be byte-identical. Also asserts the auth guard (401
# without the token) and the healthz/workers/cache read surface.
set -euo pipefail

PORT="${PORT:-18090}"
BASE="http://127.0.0.1:${PORT}"
TOKEN="fabric-ci-$$"
DIR="$(mktemp -d)"
trap 'kill "${COORD_PID:-}" "${W1_PID:-}" "${W2_PID:-}" "${TLS_COORD_PID:-}" "${TLS_W_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

echo "== building binaries"
go build -o "$DIR/nocdr" ./cmd/nocdr
go build -o "$DIR/nocexp" ./cmd/nocexp

echo "== starting coordinator on :$PORT and two joining workers"
"$DIR/nocdr" serve -addr "127.0.0.1:${PORT}" -token "$TOKEN" &
COORD_PID=$!
for i in $(seq 1 50); do
    curl -fsS "$BASE/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
"$DIR/nocdr" serve -addr "127.0.0.1:$((PORT+1))" -join "$BASE" -token "$TOKEN" &
W1_PID=$!
"$DIR/nocdr" serve -addr "127.0.0.1:$((PORT+2))" -join "$BASE" -token "$TOKEN" &
W2_PID=$!
for i in $(seq 1 50); do
    [ "$(curl -fsS "$BASE/v1/workers" | jq .count)" = "2" ] && break
    sleep 0.1
done

echo "== asserting fleet state"
curl -fsS "$BASE/healthz" | jq -e '.status == "ok" and .role == "coordinator" and .workers == 2' > /dev/null
curl -fsS "http://127.0.0.1:$((PORT+1))/healthz" | jq -e '.role == "worker"' > /dev/null

echo "== asserting the auth guard (mutating POST without the token must 401)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/sweep" -d '{}')
[ "$CODE" = "401" ] || { echo "expected 401 without token, got $CODE" >&2; exit 1; }

SWEEP_ARGS=(-coordinator "$BASE" -token "$TOKEN" -cache-dir "$DIR/cache"
    -benchmarks mesh:4,torus:4x4:transpose -routing west-first,odd-even
    -faults 1 -seeds 0,1 -quiet)

echo "== sweep run 1 (cold cache)"
"$DIR/nocexp" sweep "${SWEEP_ARGS[@]}" -json "$DIR/run1.json" 2> "$DIR/run1.err"
grep '^cache:' "$DIR/run1.err"

echo "== sweep run 2 (warm cache)"
"$DIR/nocexp" sweep "${SWEEP_ARGS[@]}" -json "$DIR/run2.json" 2> "$DIR/run2.err"
grep '^cache:' "$DIR/run2.err"

echo "== asserting byte-identical reports"
cmp "$DIR/run1.json" "$DIR/run2.json"

echo "== asserting >= 90% cache hit rate on run 2"
HITS=$(sed -n 's/^cache: \([0-9]*\) hits, \([0-9]*\) misses.*/\1/p' "$DIR/run2.err")
MISSES=$(sed -n 's/^cache: \([0-9]*\) hits, \([0-9]*\) misses.*/\2/p' "$DIR/run2.err")
TOTAL=$((HITS + MISSES))
[ "$TOTAL" -gt 0 ] || { echo "run 2 performed no cache lookups" >&2; exit 1; }
[ $((HITS * 100)) -ge $((TOTAL * 90)) ] || {
    echo "cache hit rate $HITS/$TOTAL is below 90%" >&2; exit 1; }

echo "== mid-sweep leave: stopping worker 2, sweeping a fresh grid on the survivor"
kill "$W2_PID" 2>/dev/null || true
wait "$W2_PID" 2>/dev/null || true
"$DIR/nocexp" sweep -coordinator "$BASE" -token "$TOKEN" \
    -benchmarks mesh:3x3:hotspot -seeds 0,1 -quiet -json "$DIR/run3.json" 2> /dev/null
jq -e '.results | length == 2' "$DIR/run3.json" > /dev/null

echo "== TLS leg: minting fleet PKI and rerunning the sweep over mTLS"
go run ./scripts/gencert -dir "$DIR/certs" -hosts 127.0.0.1,localhost > /dev/null
TLS_BASE="https://127.0.0.1:$((PORT+3))"
TLS_ARGS=(-tls-cert "$DIR/certs/server.pem" -tls-key "$DIR/certs/server-key.pem" -tls-ca "$DIR/certs/ca.pem")
CURL_TLS=(--cacert "$DIR/certs/ca.pem" --cert "$DIR/certs/client.pem" --key "$DIR/certs/client-key.pem")
"$DIR/nocdr" serve -addr "127.0.0.1:$((PORT+3))" -token "$TOKEN" "${TLS_ARGS[@]}" &
TLS_COORD_PID=$!
for i in $(seq 1 50); do
    curl -fsS "${CURL_TLS[@]}" "$TLS_BASE/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done
"$DIR/nocdr" serve -addr "127.0.0.1:$((PORT+4))" -join "$TLS_BASE" -token "$TOKEN" "${TLS_ARGS[@]}" &
TLS_W_PID=$!
for i in $(seq 1 50); do
    [ "$(curl -fsS "${CURL_TLS[@]}" "$TLS_BASE/v1/workers" | jq .count)" = "1" ] && break
    sleep 0.1
done
curl -fsS "${CURL_TLS[@]}" "$TLS_BASE/healthz" | jq -e '.status == "ok" and .workers == 1' > /dev/null

echo "== asserting the listener rejects clients without the fleet PKI"
curl -fsS "$TLS_BASE/healthz" > /dev/null 2>&1 && {
    echo "TLS listener answered an unpinned client" >&2; exit 1; }

echo "== TLS sweep through the coordinator"
"$DIR/nocexp" sweep -coordinator "$TLS_BASE" -token "$TOKEN" \
    -tls-ca "$DIR/certs/ca.pem" -tls-cert "$DIR/certs/client.pem" -tls-key "$DIR/certs/client-key.pem" \
    -benchmarks mesh:4 -seeds 0,1 -quiet -json "$DIR/run-tls.json" 2> /dev/null
jq -e '.results | length == 2' "$DIR/run-tls.json" > /dev/null

echo "fabric-conformance: OK ($HITS/$TOTAL hits on the warm run, TLS leg passed)"
