package nocdr_test

// One benchmark per paper artifact (see DESIGN.md's per-experiment
// index). Each removal/ordering benchmark re-runs the full algorithm on a
// pre-synthesized design and reports the added VCs as a custom metric, so
// `go test -bench=.` regenerates both the runtime claim (E10: "runs
// within minutes even for the largest benchmark" — here microseconds to
// milliseconds) and the headline resource numbers. Ablation benchmarks
// cover the design choices DESIGN.md calls out.

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	nocdr "github.com/nocdr/nocdr"
	"github.com/nocdr/nocdr/internal/bench"
	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/fabric"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/reconfig"
	"github.com/nocdr/nocdr/internal/regular"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/topology"
	"github.com/nocdr/nocdr/internal/traffic"
	"github.com/nocdr/nocdr/internal/updown"
)

// design synthesizes a benchmark design once, outside the timed loop.
func design(b *testing.B, name string, switches int) *synth.Result {
	b.Helper()
	g, err := traffic.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: switches})
	if err != nil {
		b.Fatal(err)
	}
	return des
}

func benchRemoval(b *testing.B, name string, switches int) {
	des := design(b, name, switches)
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := core.Remove(des.Topology, des.Routes, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

func benchOrdering(b *testing.B, name string, switches int) {
	des := design(b, name, switches)
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := ordering.Apply(des.Topology, des.Routes, ordering.HopIndex)
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

// --- E4: Figure 8 (D26_media sweep; the 25-switch point is the extreme
// x-position of the figure, the full curve comes from cmd/nocexp). ---

func BenchmarkFig8_D26MediaRemoval(b *testing.B)          { benchRemoval(b, "D26_media", 25) }
func BenchmarkFig8_D26MediaResourceOrdering(b *testing.B) { benchOrdering(b, "D26_media", 25) }

// --- E5: Figure 9 (D36_8 sweep, extreme point 35 switches). ---

func BenchmarkFig9_D36_8Removal(b *testing.B)          { benchRemoval(b, "D36_8", 35) }
func BenchmarkFig9_D36_8ResourceOrdering(b *testing.B) { benchOrdering(b, "D36_8", 35) }

// --- E6: Figure 10 (power/area at 14 switches over all six benchmarks). ---

func BenchmarkFig10_PowerComparison(b *testing.B) {
	var rows []bench.PowerRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) > 0 {
		// Mean normalized ordering power (Figure 10's bar height).
		total := 0.0
		for _, r := range rows {
			total += r.NormalizedOrderingPower()
		}
		b.ReportMetric(total/float64(len(rows)), "normPower")
	}
}

// --- E2: Table 1 (forward cost table on the running example). ---

func BenchmarkTable1_CostTable(b *testing.B) {
	top, _, tab := buildRing()
	g, err := nocdr.NewSession().BuildCDG(top, tab)
	if err != nil {
		b.Fatal(err)
	}
	cycle := g.SmallestCycle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nocdr.NewSession().CostTable(nocdr.Forward, cycle, tab); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7–E9: Section 5 scalar claims. ---

func BenchmarkSummary_SectionFiveClaims(b *testing.B) {
	var sum bench.Summary
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		var sweeps [][]bench.SweepPoint
		for _, g := range traffic.AllBenchmarks() {
			sweep, err := bench.VCSweep(g, []int{8, 14, 20})
			if err != nil {
				b.Fatal(err)
			}
			sweeps = append(sweeps, sweep)
		}
		sum = bench.Summarize(rows, sweeps...)
	}
	b.ReportMetric(100*sum.AvgVCReduction, "%VCreduction")
	b.ReportMetric(100*sum.AvgAreaSaving, "%areaSaving")
	b.ReportMetric(100*sum.AvgPowerSaving, "%powerSaving")
}

// --- E10: removal runtime per benchmark at the Figure 10 design point
// (the paper: "the method runs within minutes even for the largest
// benchmark"). ---

func BenchmarkRemoval_D26Media(b *testing.B) { benchRemoval(b, "D26_media", 14) }
func BenchmarkRemoval_D36_4(b *testing.B)    { benchRemoval(b, "D36_4", 14) }
func BenchmarkRemoval_D36_6(b *testing.B)    { benchRemoval(b, "D36_6", 14) }
func BenchmarkRemoval_D36_8(b *testing.B)    { benchRemoval(b, "D36_8", 14) }
func BenchmarkRemoval_D35Bot(b *testing.B)   { benchRemoval(b, "D35_bot", 14) }
func BenchmarkRemoval_D38TVO(b *testing.B)   { benchRemoval(b, "D38_tvo", 14) }

// --- Simulator hot loop: steady-state Step cost on the six paper
// benchmarks after removal, at saturation load. BenchmarkSimStep runs the
// dense/worklist engine; BenchmarkSimStepMapBaseline runs the same
// workload through the Reference arbitration path (full channel scan +
// map-based next-hop resolution + per-link map grouping — the seed
// engine's cost profile). Both paths decide identical moves, so the ratio
// is a pure hot-loop speedup. The perf-regression CI job pins
// BenchmarkSimStep with benchstat. ---

func benchSimStep(b *testing.B, name string, reference bool) {
	g, err := traffic.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: 14})
	if err != nil {
		b.Fatal(err)
	}
	rm, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), des.Topology, des.Routes)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := nocdr.NewSession().NewSimulator(rm.Topology, g, rm.Routes, nocdr.SimConfig{
		MaxCycles:  1 << 62,
		LoadFactor: 0.1,
		Seed:       11,
		Reference:  reference,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the network into steady state before timing.
	for i := 0; i < 2000; i++ {
		sim.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

func BenchmarkSimStep(b *testing.B) {
	for _, name := range traffic.BenchmarkNames() {
		b.Run(name, func(b *testing.B) { benchSimStep(b, name, false) })
	}
}

func BenchmarkSimStepMapBaseline(b *testing.B) {
	for _, name := range traffic.BenchmarkNames() {
		b.Run(name, func(b *testing.B) { benchSimStep(b, name, true) })
	}
}

// --- E11: simulation validation (cycles simulated per second, and the
// deadlock outcome as a metric: 1 = deadlocked). ---

func BenchmarkSimulation_RingSaturation(b *testing.B) {
	top, g, tab := buildRing()
	var deadlocked float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := nocdr.NewSession().Simulate(context.Background(), top, g, tab, nocdr.SimConfig{
			MaxCycles:  20000,
			LoadFactor: 1.0,
			Seed:       7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Deadlocked {
			deadlocked = 1
		}
	}
	b.ReportMetric(deadlocked, "deadlocked")
}

func BenchmarkSimulation_RingAfterRemoval(b *testing.B) {
	top, g, tab := buildRing()
	res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), top, tab)
	if err != nil {
		b.Fatal(err)
	}
	var deadlocked float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := nocdr.NewSession().Simulate(context.Background(), res.Topology, g, res.Routes, nocdr.SimConfig{
			MaxCycles:  20000,
			LoadFactor: 1.0,
			Seed:       7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Deadlocked {
			deadlocked = 1
		}
	}
	b.ReportMetric(deadlocked, "deadlocked")
}

// --- Ablations (DESIGN.md §6). ---

func benchAblationRemoval(b *testing.B, opts core.Options) {
	des := design(b, "D36_8", 22)
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := core.Remove(des.Topology, des.Routes, opts)
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

func BenchmarkAblation_DirectionBestOfBoth(b *testing.B) {
	benchAblationRemoval(b, core.Options{Policy: core.BestOfBoth})
}
func BenchmarkAblation_DirectionForwardOnly(b *testing.B) {
	benchAblationRemoval(b, core.Options{Policy: core.ForwardOnly})
}
func BenchmarkAblation_DirectionBackwardOnly(b *testing.B) {
	benchAblationRemoval(b, core.Options{Policy: core.BackwardOnly})
}
func BenchmarkAblation_CycleSmallestFirst(b *testing.B) {
	benchAblationRemoval(b, core.Options{Selection: core.SmallestFirst})
}
func BenchmarkAblation_CycleFirstFound(b *testing.B) {
	benchAblationRemoval(b, core.Options{Selection: core.FirstFound})
}

func benchAblationOrdering(b *testing.B, scheme ordering.Scheme) {
	des := design(b, "D36_8", 22)
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := ordering.Apply(des.Topology, des.Routes, scheme)
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

func BenchmarkAblation_OrderingHopIndex(b *testing.B) {
	benchAblationOrdering(b, ordering.HopIndex)
}
func BenchmarkAblation_OrderingGreedyBFS(b *testing.B) {
	benchAblationOrdering(b, ordering.GreedyBFS)
}
func BenchmarkAblation_OrderingGreedyByID(b *testing.B) {
	benchAblationOrdering(b, ordering.GreedyByID)
}

// --- Scaling: removal runtime vs problem size (supports the paper's
// "scalable" claim beyond its largest benchmark). ---

func benchScale(b *testing.B, cores, fanout, switches int) {
	g := traffic.RandomKOut("scale", cores, fanout, 99)
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: switches})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Remove(des.Topology, des.Routes, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScale_64Cores(b *testing.B)  { benchScale(b, 64, 6, 24) }
func BenchmarkScale_128Cores(b *testing.B) { benchScale(b, 128, 6, 48) }
func BenchmarkScale_256Cores(b *testing.B) { benchScale(b, 256, 6, 96) }

// --- Incremental vs full-rebuild Remove: the hot-path optimisation.
// Same inputs, same results (see core's differential tests); the metric
// of interest is ns/op. ---

func benchRemovalMode(b *testing.B, name string, switches int, fullRebuild bool) {
	des := design(b, name, switches)
	opts := core.Options{FullRebuild: fullRebuild}
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := core.Remove(des.Topology, des.Routes, opts)
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

func BenchmarkRemoveIncremental_D36_8_35sw(b *testing.B) { benchRemovalMode(b, "D36_8", 35, false) }
func BenchmarkRemoveFullRebuild_D36_8_35sw(b *testing.B) { benchRemovalMode(b, "D36_8", 35, true) }

func benchScaleMode(b *testing.B, cores, fanout, switches int, fullRebuild bool) {
	g := traffic.RandomKOut("scale", cores, fanout, 99)
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: switches})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{FullRebuild: fullRebuild}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Remove(des.Topology, des.Routes, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoveIncremental_128Cores(b *testing.B) { benchScaleMode(b, 128, 6, 48, false) }
func BenchmarkRemoveFullRebuild_128Cores(b *testing.B) { benchScaleMode(b, 128, 6, 48, true) }
func BenchmarkRemoveIncremental_256Cores(b *testing.B) { benchScaleMode(b, 256, 6, 96, false) }
func BenchmarkRemoveFullRebuild_256Cores(b *testing.B) { benchScaleMode(b, 256, 6, 96, true) }

// --- Online reconfiguration: single-fault delta replay vs from-scratch
// removal of the faulted grid. Same end state (acyclic, verified by the
// differential tests); the ratio is the point of the online path — the
// delta must be at least ~2x faster on the 10x10 grid, and the benchstat
// perf gate pins both sides. ---

func benchReconfigDesign(b *testing.B, cols, rows int) (*reconfig.Design, topology.LinkID) {
	g, err := regular.Mesh(cols, rows)
	if err != nil {
		b.Fatal(err)
	}
	n := cols * rows
	tr := traffic.NewGraph("all2all")
	for i := 0; i < n; i++ {
		tr.AddCore("")
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				tr.MustAddFlow(traffic.CoreID(s), traffic.CoreID(d), 10)
			}
		}
	}
	// Minimal-adaptive routing gives the base design a genuinely cyclic
	// union CDG, so the pre-fault removal does real work — which is
	// exactly what the warm path reuses and the cold baseline re-pays.
	// (A turn-model base is acyclic by construction: both paths would
	// only ever break the fault's own cycles, and the ratio would
	// measure nothing.)
	d, _, err := reconfig.New(g, tr, route.MinimalAdaptive, 2, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	faults, err := regular.SelectFaults(g, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	return d, faults[0]
}

func benchReconfigDelta(b *testing.B, cols, rows int) {
	d, fault := benchReconfigDesign(b, cols, rows)
	ctx := context.Background()
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := reconfig.NewState(d) // clone + CDG build, outside the timed region
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		delta, err := st.ApplyFault(ctx, fault, reconfig.Options{SkipSim: true})
		if err != nil {
			b.Fatal(err)
		}
		added = delta.VCsAdded
	}
	b.ReportMetric(float64(added), "VCs")
}

func benchReconfigCold(b *testing.B, cols, rows int) {
	d, fault := benchReconfigDesign(b, cols, rows)
	ctx := context.Background()
	st, err := reconfig.NewState(d)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.ApplyFault(ctx, fault, reconfig.Options{SkipSim: true}); err != nil {
		b.Fatal(err)
	}
	faulted := st.Design()
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := reconfig.ColdRemove(ctx, faulted, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

func BenchmarkReconfigure_Delta8x8(b *testing.B)   { benchReconfigDelta(b, 8, 8) }
func BenchmarkReconfigure_Cold8x8(b *testing.B)    { benchReconfigCold(b, 8, 8) }
func BenchmarkReconfigure_Delta10x10(b *testing.B) { benchReconfigDelta(b, 10, 10) }
func BenchmarkReconfigure_Cold10x10(b *testing.B)  { benchReconfigCold(b, 10, 10) }

// --- Serial vs parallel sweep engine over the full paper grid. ---

func benchSweep(b *testing.B, parallel int) {
	grid := runner.Grid{
		Benchmarks:   traffic.BenchmarkNames(),
		SwitchCounts: []int{8, 11, 14, 17, 20},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := runner.Run(grid, runner.Options{Parallel: parallel})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	}
}

// The parallel variant uses max(8, NumCPU) workers: on a single-core host
// it measures pool overhead (expect parity with serial); on multi-core CI
// it measures the fan-out speedup.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweepParallel(b *testing.B) {
	workers := runtime.NumCPU()
	if workers < 8 {
		workers = 8
	}
	benchSweep(b, workers)
}

// --- Lockstep batch engine vs sequential single-variant runs: the
// batch-first Simulate API's reason to exist. Both benchmarks run the
// identical 16 seed variants of one removed 8x8-mesh design;
// BenchmarkLockstep_16v dispatches them as one lockstep batch (one
// construction, per-lane mutable state, lanes fanned across the CPUs)
// while BenchmarkLockstepSeq_16v runs 16 independent Simulate calls.
// The speedup target is ≥5x on a multi-core runner (construction
// sharing plus lane parallelism); the benchstat perf gate pins both
// sides so neither path regresses silently. ---

const lockstepVariants = 16

func lockstepWorkload(b *testing.B) (*nocdr.Topology, *nocdr.TrafficGraph, *nocdr.RouteTable) {
	b.Helper()
	grid, err := nocdr.Mesh(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	g, err := nocdr.UniformTraffic(64, 32, 100)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := nocdr.DORRoutes(grid, g)
	if err != nil {
		b.Fatal(err)
	}
	res, err := nocdr.NewSession().RemoveDeadlocks(context.Background(), grid.Topology, tab)
	if err != nil {
		b.Fatal(err)
	}
	return res.Topology, g, res.Routes
}

func lockstepSpec() nocdr.SimSpec {
	seeds := make([]int64, lockstepVariants)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return nocdr.SimSpec{
		Seeds: seeds,
		Base:  nocdr.SimConfig{MaxCycles: 1000, LoadFactor: 0.3},
	}
}

func BenchmarkLockstep_16v(b *testing.B) {
	top, g, tab := lockstepWorkload(b)
	s := nocdr.NewSession(nocdr.WithParallel(runtime.NumCPU()))
	spec := lockstepSpec()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs, err := s.SimulateBatch(ctx, top, g, tab, spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(bs.Variants) != lockstepVariants {
			b.Fatalf("got %d variants", len(bs.Variants))
		}
	}
}

func BenchmarkLockstepSeq_16v(b *testing.B) {
	top, g, tab := lockstepWorkload(b)
	s := nocdr.NewSession()
	spec := lockstepSpec()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sd := range spec.Seeds {
			cfg := spec.Base
			cfg.Seed = sd
			if _, err := s.Simulate(ctx, top, g, tab, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Extensions: alternative deadlock-freedom strategies (E12/E13). ---

// BenchmarkExtension_UpDownRouting measures the turn-prohibition
// baseline: zero VCs, but inflated routes (reported as avg hops).
func BenchmarkExtension_UpDownRouting(b *testing.B) {
	g, err := traffic.ByName("D36_8")
	if err != nil {
		b.Fatal(err)
	}
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: 14})
	if err != nil {
		b.Fatal(err)
	}
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := updown.Apply(des.Topology, g)
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Routes.AvgLen()
	}
	b.ReportMetric(avg, "avgHops")
	b.ReportMetric(des.Routes.AvgLen(), "shortestHops")
}

// BenchmarkExtension_RecoveryVsRemoval runs the DISHA-style comparison on
// the paper's ring at saturation and reports removal's throughput
// advantage.
func BenchmarkExtension_RecoveryVsRemoval(b *testing.B) {
	top, g, tab, err := bench.RingWorkload()
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := bench.CompareRecovery("ring", top, g, tab, 20000)
		if err != nil {
			b.Fatal(err)
		}
		speedup = row.Speedup()
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkExtension_TorusDateline measures the removal algorithm
// discovering dateline VCs on a 4x4 torus under DOR routing.
func BenchmarkExtension_TorusDateline(b *testing.B) {
	grid, err := regular.Torus(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	tg, err := regular.UniformTraffic(16, 8, 100)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := regular.DORRoutes(grid, tg)
	if err != nil {
		b.Fatal(err)
	}
	var added int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Remove(grid.Topology, tab, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

// --- Session overhead: the context-first pipeline API must be free. ---

// BenchmarkSessionOverhead mirrors BenchmarkRemoval_D26Media through the
// Session path with an attached (cheap) progress feed — the worst case
// for the new plumbing: per-break event construction plus the
// cancellation checks in the removal loop. The benchstat perf gate pins
// it next to BenchmarkRemoval_; the Session plumbing budget is < 2% over
// the direct core.Remove path.
func BenchmarkSessionOverhead(b *testing.B) {
	des := design(b, "D26_media", 14)
	events := 0
	s := nocdr.NewSession(nocdr.WithProgress(func(e nocdr.Event) { events++ }))
	ctx := context.Background()
	b.ResetTimer()
	var added int
	for i := 0; i < b.N; i++ {
		res, err := s.RemoveDeadlocks(ctx, des.Topology, des.Routes)
		if err != nil {
			b.Fatal(err)
		}
		added = res.AddedVCs
	}
	b.ReportMetric(float64(added), "VCs")
}

// BenchmarkSessionOverheadSimStep is the simulator-side twin: a Session
// simulator stepping under a context-checked Run loop, against the same
// steady-state workload BenchmarkSimStep times. (Step itself is shared;
// the cancellation poll lives in RunContext, amortized over 1024 cycles,
// so this mainly guards the epoch-feed wiring.)
func BenchmarkSessionOverheadSimStep(b *testing.B) {
	g, err := traffic.ByName("D26_media")
	if err != nil {
		b.Fatal(err)
	}
	des, err := synth.Synthesize(g, synth.Options{SwitchCount: 14})
	if err != nil {
		b.Fatal(err)
	}
	s := nocdr.NewSession()
	ctx := context.Background()
	rm, err := s.RemoveDeadlocks(ctx, des.Topology, des.Routes)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := s.NewSimulator(rm.Topology, g, rm.Routes, nocdr.SimConfig{
		MaxCycles:  1 << 62,
		LoadFactor: 0.1,
		Seed:       11,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		sim.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}

// cacheBenchPayload is a realistic cached-cell value: the canonical JSON
// of one sweep result, a few hundred bytes.
func cacheBenchPayload(b *testing.B) (string, []byte) {
	b.Helper()
	grid := runner.Grid{Benchmarks: []string{"mesh:4"}, Seeds: []int64{0}}
	rep, err := runner.Run(grid, runner.Options{Parallel: 1})
	if err != nil {
		b.Fatal(err)
	}
	data, err := json.Marshal(rep.Results[0])
	if err != nil {
		b.Fatal(err)
	}
	return runner.CellKey(grid.Jobs()[0], runner.Options{}, nil), data
}

// BenchmarkCacheHit pins the fabric cache's hot path: a Do call answered
// from the in-memory tier. This is the per-cell overhead every cached
// sweep pays, so it must stay in the tens of nanoseconds — a regression
// here taxes exactly the runs the cache exists to make free.
func BenchmarkCacheHit(b *testing.B) {
	key, data := cacheBenchPayload(b)
	cache := fabric.NewCache(fabric.CacheOptions{})
	cache.Put(key, data)
	b.ReportAllocs()
	b.ResetTimer()
	miss := func() ([]byte, error) { return nil, errors.New("benchmark cache missed") }
	for i := 0; i < b.N; i++ {
		if _, cached, err := cache.Do(key, false, miss); err != nil || !cached {
			b.Fatal("benchmark cache missed")
		}
	}
}

// BenchmarkCacheKey pins the key derivation (SHA-256 over the canonical
// job encoding) that both hit and miss paths pay per cell.
func BenchmarkCacheKey(b *testing.B) {
	grid := runner.Grid{Benchmarks: []string{"mesh:4"}, Seeds: []int64{0}}
	job := grid.Jobs()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.CellKey(job, runner.Options{}, nil)
	}
}
