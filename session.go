package nocdr

import (
	"context"
	"fmt"

	"github.com/nocdr/nocdr/internal/bench/runner"
	"github.com/nocdr/nocdr/internal/cdg"
	"github.com/nocdr/nocdr/internal/core"
	"github.com/nocdr/nocdr/internal/nocerr"
	"github.com/nocdr/nocdr/internal/ordering"
	"github.com/nocdr/nocdr/internal/route"
	"github.com/nocdr/nocdr/internal/synth"
	"github.com/nocdr/nocdr/internal/wormhole"
)

// Session is the context-first front door of the library: one configured
// pipeline object whose methods cover the paper's whole flow —
// communication graph → synthesized topology → routes → CDG → iterative
// cycle removal → simulation — plus the concurrent sweep engine. A
// Session carries cross-cutting policy (break direction, cycle selection,
// VC budget, worker count) and an optional progress feed, so individual
// calls stay small:
//
//	s := nocdr.NewSession(
//		nocdr.WithVCLimit(8),
//		nocdr.WithProgress(func(e nocdr.Event) { log.Println(e.Kind) }),
//	)
//	design, err := s.Synthesize(ctx, g, nocdr.SynthOptions{SwitchCount: 14})
//	res, err := s.RemoveDeadlocks(ctx, design.Topology, design.Routes)
//
// Every long-running method takes a context.Context and returns promptly
// after cancellation with an error wrapping ErrCanceled (and the
// context's own error). Inputs are never mutated.
//
// A Session is immutable after NewSession and safe for concurrent use by
// multiple goroutines, provided the WithProgress callback is itself
// concurrency-safe: events from overlapping operations are delivered on
// the goroutines running them.
type Session struct {
	vcLimit       int
	maxIterations int
	policy        DirectionPolicy
	selection     CycleSelection
	fullRebuild   bool
	parallel      int
	routings      []string
	faults        int
	maxPaths      int
	workers       []string
	workerSource  WorkerSource
	workerToken   string
	resultCache   ResultCache
	progress      func(Event)
	onBreak       func(BreakRecord) // legacy RemovalOptions.OnBreak passthrough
}

// Option configures a Session (functional options).
type Option func(*Session)

// NewSession returns a Session with the paper's default configuration,
// modified by the given options.
func NewSession(opts ...Option) *Session {
	s := &Session{parallel: 1}
	for _, o := range opts {
		o(s)
	}
	return s
}

// WithVCLimit caps the total virtual channels RemoveDeadlocks may add;
// exceeding it fails with ErrVCLimit. 0 (the default) means unlimited.
func WithVCLimit(n int) Option { return func(s *Session) { s.vcLimit = n } }

// WithMaxIterations caps the removal loop's cycle breaks; 0 means the
// library default.
func WithMaxIterations(n int) Option { return func(s *Session) { s.maxIterations = n } }

// WithPolicy selects the break-direction rule (default BestOfBoth, the
// paper's policy).
func WithPolicy(p DirectionPolicy) Option { return func(s *Session) { s.policy = p } }

// WithSelection selects which CDG cycle is attacked next (default
// SmallestFirst, the paper's heuristic).
func WithSelection(c CycleSelection) Option { return func(s *Session) { s.selection = c } }

// WithFullRebuild routes removal through the rebuild-per-iteration
// Algorithm 1 loop instead of the incremental CDG (same results, slower;
// kept for differential comparisons).
func WithFullRebuild(on bool) Option { return func(s *Session) { s.fullRebuild = on } }

// WithParallel sets Sweep's in-process worker count (default 1 =
// serial). Any value produces a byte-identical report; this only changes
// wall-clock time. It does not apply to WithWorkers dispatch, where each
// remote worker's own configuration (serve Options.SweepParallel)
// governs its pool.
func WithParallel(n int) Option { return func(s *Session) { s.parallel = n } }

// WithRouting sets Sweep's default routing-function axis for
// regular-topology preset cells (canonical turn-model names, see
// ParseTurnModel); a grid that carries its own Routings wins. The
// default is deterministic dimension-ordered routing.
func WithRouting(models ...string) Option {
	return func(s *Session) { s.routings = append([]string(nil), models...) }
}

// WithFaults sets Sweep's default per-cell link-fault count for
// regular-topology preset cells; a grid that carries its own Faults
// wins. Faults are selected deterministically from each cell's seed and
// never disconnect the network; pair them with an adaptive WithRouting —
// deterministic DOR cannot route around a fault.
func WithFaults(n int) Option { return func(s *Session) { s.faults = n } }

// WithMaxPaths caps candidate paths per flow for adaptive sweep cells
// (0 = the library default).
func WithMaxPaths(n int) Option { return func(s *Session) { s.maxPaths = n } }

// WithWorkers makes Sweep dispatch the grid across running `nocdr serve`
// workers at the given base URLs instead of evaluating cells in-process:
// cells are cut into shards by a stable hash of their identity, shards
// fan out over the /v1/sweep job API (requeued onto survivors if a
// worker dies), and the merged report is byte-identical to a local run
// of the same grid. The progress feed carries EventShardAssigned and
// EventWorkerRetry instead of in-process removal events; completed cells
// still emit EventSweepCell as their shard reports arrive.
func WithWorkers(urls ...string) Option {
	return func(s *Session) { s.workers = append([]string(nil), urls...) }
}

// WithWorkerSource attaches live worker membership to Sweep's
// distributed dispatch, on top of (or instead of) the static WithWorkers
// list: workers the source reports that were never seen before are
// admitted mid-run and immediately take unowned shards. The fabric
// package's coordinator-registry watcher implements the contract. With a
// source attached, Sweep may start with zero workers and wait for the
// first join.
func WithWorkerSource(src WorkerSource) Option { return func(s *Session) { s.workerSource = src } }

// WithWorkerAuth attaches the fleet bearer token to every request a
// distributed Sweep sends its workers ("" = open fleet).
func WithWorkerAuth(token string) Option { return func(s *Session) { s.workerToken = token } }

// WithResultCache attaches a content-addressed result cache to Sweep:
// before evaluating a cell the cache is consulted under the cell's
// semantic key (job identity + every option that changes its result +
// an engine-version salt), and every cleanly computed cell is stored
// back. A cache-served report is byte-identical to a cold one — the
// stored bytes are the canonical cell encoding. With WithWorkers, whole
// shards already cached are served locally and never dispatched.
func WithResultCache(c ResultCache) Option { return func(s *Session) { s.resultCache = c } }

// WithProgress streams the Session's Event feed to fn: cycle breaks and
// VC additions during removal, cell completions during sweeps, epoch
// snapshots during simulations. Events are delivered synchronously on
// the working goroutine — keep fn fast, and make it concurrency-safe if
// the Session is shared across goroutines.
func WithProgress(fn func(Event)) Option { return func(s *Session) { s.progress = fn } }

// Synthesize builds an application-specific topology and routes for a
// communication graph (substitute for the paper's reference [9]),
// honoring ctx between phases.
func (s *Session) Synthesize(ctx context.Context, g *TrafficGraph, opts SynthOptions) (*Design, error) {
	des, err := synth.SynthesizeContext(ctx, g, opts)
	return des, wrapErr(err)
}

// ComputeRoutes derives deterministic load-aware shortest-path routes
// for every flow on an existing topology with attached cores.
func (s *Session) ComputeRoutes(top *Topology, g *TrafficGraph) (*RouteTable, error) {
	tab, err := route.ShortestPaths(top, g)
	return tab, wrapErr(err)
}

// BuildCDG constructs the channel dependency graph for a routed
// topology.
func (s *Session) BuildCDG(top *Topology, tab *RouteTable) (*CDG, error) {
	g, err := cdg.Build(top, tab)
	return g, wrapErr(err)
}

// DeadlockFree reports whether the routed topology's CDG is acyclic.
func (s *Session) DeadlockFree(top *Topology, tab *RouteTable) (bool, error) {
	free, err := core.DeadlockFree(top, tab)
	return free, wrapErr(err)
}

// removalOptions materializes the Session's removal configuration,
// wiring the Event feed into the break loop.
func (s *Session) removalOptions() RemovalOptions {
	opts := core.Options{
		MaxIterations: s.maxIterations,
		VCLimit:       s.vcLimit,
		Policy:        s.policy,
		Selection:     s.selection,
		FullRebuild:   s.fullRebuild,
		OnBreak:       s.onBreak,
	}
	if s.progress != nil {
		user := s.onBreak
		iter := 0
		opts.OnBreak = func(rec BreakRecord) {
			iter++
			r := rec
			s.progress(Event{Kind: EventCycleBroken, Iteration: iter, Break: &r})
			for _, ch := range rec.NewChannels {
				s.progress(Event{Kind: EventVCAdded, Iteration: iter, Channel: ch})
			}
			if user != nil {
				user(rec)
			}
		}
	}
	return opts
}

// RemoveDeadlocks runs the paper's Algorithm 1 under the Session's
// policy: it returns modified copies of the topology and routes whose
// CDG is acyclic, adding the minimum virtual channels its cost heuristic
// finds (at most WithVCLimit). The break loop checks ctx between
// iterations. Inputs are never mutated.
func (s *Session) RemoveDeadlocks(ctx context.Context, top *Topology, tab *RouteTable) (*RemovalResult, error) {
	res, err := core.RemoveContext(ctx, top, tab, s.removalOptions())
	return res, wrapErr(err)
}

// CostTable computes Algorithm 2's cost table for a cycle in the given
// direction (the paper's Table 1 when dir is Forward); useful for
// inspecting why a break was chosen.
func (s *Session) CostTable(dir Direction, cycle []Channel, tab *RouteTable) (*CostTable, error) {
	ct, err := core.BuildCostTable(dir, cycle, tab)
	return ct, wrapErr(err)
}

// ApplyResourceOrdering runs the paper's comparison baseline on the same
// inputs RemoveDeadlocks takes.
func (s *Session) ApplyResourceOrdering(top *Topology, tab *RouteTable, scheme OrderingScheme) (*OrderingResult, error) {
	res, err := ordering.Apply(top, tab, scheme)
	return res, wrapErr(err)
}

// DefaultEpochCycles is the epoch period Session.Simulate falls back to
// when a progress feed is attached but SimConfig.EpochCycles is unset.
const DefaultEpochCycles = 1000

// NewSimulator builds a flit-level wormhole simulator for a routed
// workload, wiring the Session's Event feed into the epoch callback
// (unless the config carries its own).
func (s *Session) NewSimulator(top *Topology, g *TrafficGraph, tab *RouteTable, cfg SimConfig) (*Simulator, error) {
	sim, err := wormhole.New(top, g, tab, s.simConfig(cfg))
	return sim, wrapErr(err)
}

// Simulate builds a simulator and runs it to completion, honoring ctx
// inside the flit-stepping loop and emitting EventSimEpoch snapshots to
// the Session's progress feed.
//
// It is the single-variant wrapper over SimulateBatch — a SimSpec with
// only Base set — retained with its behavior pinned by differential
// tests; new code sweeping seeds or loads should call SimulateBatch,
// which shares design construction across variants.
func (s *Session) Simulate(ctx context.Context, top *Topology, g *TrafficGraph, tab *RouteTable, cfg SimConfig) (*SimStats, error) {
	bs, err := s.SimulateBatch(ctx, top, g, tab, SimSpec{Base: cfg})
	if err != nil {
		return nil, err
	}
	return bs.Variants[0].Stats, nil
}

// simConfig attaches the Session's progress feed to a simulation config.
func (s *Session) simConfig(cfg SimConfig) SimConfig {
	if s.progress != nil && cfg.OnEpoch == nil {
		if cfg.EpochCycles == 0 {
			cfg.EpochCycles = DefaultEpochCycles
		}
		cfg.OnEpoch = func(e SimEpoch) {
			s.progress(Event{Kind: EventSimEpoch, Epoch: &e})
		}
	}
	return cfg
}

// Sweep fans the grid's (benchmark × switches × policy × seed) jobs out
// across WithParallel workers and aggregates a deterministic report —
// the same engine behind `nocexp sweep`. The Session's WithPolicy,
// WithVCLimit and WithFullRebuild apply to every cell's removal; the
// grid's Policies axis governs cycle selection per cell (when the grid
// leaves it empty, it defaults to the Session's WithSelection instead
// of the paper default), and a grid without Routings/Faults/MaxPaths
// inherits the Session's WithRouting/WithFaults/WithMaxPaths. Each
// cell's removal and simulations honor ctx;
// on cancellation the partial report is returned together with an error
// wrapping ErrCanceled, with Report.Canceled set and unfinished cells
// marked canceled. Completed cells emit EventSweepCell on the Session's
// progress feed.
func (s *Session) Sweep(ctx context.Context, grid SweepGrid, opts SweepOptions) (*SweepReport, error) {
	if len(grid.Policies) == 0 && s.selection == FirstFound {
		grid.Policies = []string{"first"}
	}
	if len(grid.Routings) == 0 {
		grid.Routings = append([]string(nil), s.routings...)
	}
	if grid.Faults == 0 {
		grid.Faults = s.faults
	}
	if grid.MaxPaths == 0 {
		grid.MaxPaths = s.maxPaths
	}
	ropts := runner.Options{
		Parallel:    s.parallel,
		Policy:      s.policy,
		VCLimit:     s.vcLimit,
		FullRebuild: s.fullRebuild,
		Simulate:    opts.Simulate,
		Sim:         opts.Sim,
		Certify:     opts.Certify,
		ShardIndex:  opts.ShardIndex,
		ShardCount:  opts.ShardCount,
		CellCache:   s.resultCache,
		NoCache:     opts.NoCache,
	}
	if s.progress != nil {
		ropts.OnResult = func(i, total int, res SweepResult) {
			s.progress(Event{Kind: EventSweepCell, CellIndex: i, CellTotal: total, Cell: &res})
		}
	}
	var rep *SweepReport
	var err error
	if len(s.workers) > 0 || s.workerSource != nil {
		if opts.ShardCount != 0 {
			return nil, wrapErr(fmt.Errorf("%w: WithWorkers and a SweepOptions shard filter are mutually exclusive", nocerr.ErrInvalidInput))
		}
		ropts.ShardIndex, ropts.ShardCount = 0, 0
		sh := &runner.Sharded{Workers: s.workers, Source: s.workerSource, AuthToken: s.workerToken}
		if s.progress != nil {
			sh.OnAssign = func(shard, shards int, worker string) {
				s.progress(Event{Kind: EventShardAssigned, Shard: shard, ShardTotal: shards, Worker: worker})
			}
			sh.OnRetry = func(shard int, worker string, failure error) {
				s.progress(Event{Kind: EventWorkerRetry, Shard: shard, Worker: worker, WorkerErr: failure.Error()})
			}
		}
		rep, err = sh.RunContext(ctx, grid, ropts)
	} else {
		rep, err = runner.RunContext(ctx, grid, ropts)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	if rep.Canceled {
		if ctx.Err() != nil {
			return rep, fmt.Errorf("%w: sweep interrupted, partial report retained: %w", nocerr.ErrCanceled, ctx.Err())
		}
		// A sharded sweep can come back partial without this ctx firing:
		// a worker-side job was canceled (operator, worker shutdown).
		return rep, fmt.Errorf("%w: sweep interrupted on a worker, partial report retained", nocerr.ErrCanceled)
	}
	return rep, nil
}
